(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Fig 3, Table I, the §III-B classifier numbers, Fig 6,
   Fig 7, Fig 8, Fig 9, Fig 10, Table II, Fig 11), plus an ablation
   study and Bechamel micro-benchmarks of the pipeline kernels.

   Usage:  dune exec bench/main.exe [-- OPTION... EXPERIMENT...]
   where EXPERIMENT is one of: all fig3 table1 accuracy fig6 fig7 fig8
   fig9 fig10 table2 fig11 ablation recovery hardening speedup resume
   serve classes micro (default: all).

   Options:
     -j N, --jobs N   run campaigns on N worker domains (0 = the
                      runtime's recommended count); default from
                      XENTRY_JOBS, else 1.  Results are bit-identical
                      for every N.
     --engine E       interpreter engine for hypervisor execution:
                      ref (match-based reference) or fast (threaded
                      code); default from XENTRY_ENGINE, else fast.
                      Results are bit-identical for both.
     --json FILE      write per-experiment wall-clock timings and
                      campaign sizes as JSON (perf trajectory for
                      BENCH_*.json tracking).
     --telemetry FILE enable the Telemetry subsystem for the run and
                      write its counters/histograms/events as JSON
                      Lines to FILE at exit; the --json export gains
                      a "telemetry" section.  Default from
                      XENTRY_TELEMETRY.  Results are unaffected.

   XENTRY_SCALE scales campaign sizes (default 1.0 = paper scale:
   23,400 training + 17,700 testing injections, 30,000 for the
   coverage study). *)

open Xentry_util
module R = Report  (* Xentry_util.Report: rendering *)
module Mcpu = Xentry_machine.Cpu
open Xentry_vmm
open Xentry_workload
open Xentry_mlearn
open Xentry_core
open Xentry_faultinject

let scale =
  match Sys.getenv_opt "XENTRY_SCALE" with
  | Some s -> (
      try
        let v = float_of_string s in
        if v > 0.0 then v else 1.0
      with _ -> 1.0)
  | None -> 1.0

(* Campaign sizes floor at one injection; when the floor bites, say so
   rather than silently inflating a tiny XENTRY_SCALE smoke run. *)
let scaled n =
  let v = int_of_float (float_of_int n *. scale) in
  if v < 1 then begin
    Printf.eprintf
      "[scale] %d x %.4f rounds to %d; clamping to 1 injection (smoke run)\n%!"
      n scale v;
    1
  end
  else v

let print = print_string
let printf = Printf.printf

(* Worker domains for the campaign engine; set by -j/--jobs, seeded
   from XENTRY_JOBS.  Parsed before any experiment runs, so the lazy
   pipeline/campaign artifacts below see the final value. *)
let jobs = ref (Pool.default_jobs ())
let json_path : string option ref = ref None
let telemetry_path : string option ref = ref (Sys.getenv_opt "XENTRY_TELEMETRY")

(* --json accumulators: per-phase and per-experiment wall clock plus
   the campaign sizes behind them. *)
let phase_timings : (string * float * int) list ref = ref []
let experiment_timings : (string * float) list ref = ref []
let speedup_result : (int * int * float * float * bool) option ref = ref None

(* micro's engine comparison: (ref steps/s, fast steps/s, ref==fast). *)
let micro_engine_result : (float * float * bool) option ref = ref None
let record_phase name seconds injections =
  phase_timings := (name, seconds, injections) :: !phase_timings

let benchmarks = Array.to_list Profile.all_benchmarks

let pct_of_fraction f = 100.0 *. f

(* ------------------------------------------------------------------ *)
(* Shared heavy artifacts, built once per process                      *)
(* ------------------------------------------------------------------ *)

let trained =
  lazy
    (let train_injections = scaled 23_400 in
     let test_injections = scaled 17_700 in
     printf
       "[pipeline] training detector: %d training + %d testing injections (jobs %d)...\n%!"
       train_injections test_injections !jobs;
     let t0 = Unix.gettimeofday () in
     let result =
       Training.default_pipeline ~jobs:!jobs ~seed:2014 ~train_injections
         ~test_injections ()
     in
     let dt = Unix.gettimeofday () -. t0 in
     printf "[pipeline] done in %.1fs\n%!" dt;
     record_phase "pipeline" dt (train_injections + test_injections);
     result)

let detector = lazy (Training.detector (Lazy.force trained))

let campaign_records =
  lazy
    (let per_benchmark = scaled (30_000 / 6) in
     printf "[campaign] %d injections x %d benchmarks (jobs %d)...\n%!"
       per_benchmark (List.length benchmarks) !jobs;
     let t0 = Unix.gettimeofday () in
     let det = Lazy.force detector in
     let records =
       List.mapi
         (fun i b ->
           ( b,
             Campaign.execute
               (Campaign.Config.make ~detector:det ~jobs:!jobs ~benchmark:b
                  ~injections:per_benchmark ~seed:(77 + (i * 1009)) ()) ))
         benchmarks
     in
     let dt = Unix.gettimeofday () -. t0 in
     printf "[campaign] done in %.1fs\n%!" dt;
     record_phase "coverage-campaign" dt (per_benchmark * List.length benchmarks);
     records)

let merged_summary =
  lazy (Report.summarize (List.concat_map snd (Lazy.force campaign_records)))

let deployed_tree_comparisons () =
  Detector.worst_case_comparisons (Lazy.force detector)

(* ------------------------------------------------------------------ *)
(* Fig 3: frequency of hypervisor activities                           *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  print (R.section "Fig 3: frequency of hypervisor activities (/s)");
  let rng = Rng.create 42 in
  let seconds = 60 in
  let rows = ref [] in
  let boxes = ref [] in
  List.iter
    (fun b ->
      let p = Profile.get b in
      List.iter
        (fun mode ->
          let stream = Stream.create p mode (Rng.split rng) in
          let rates = Stream.activation_rates stream ~seconds in
          let box = Stats.box_summary rates in
          rows :=
            [
              Profile.benchmark_name b;
              (match mode with Profile.PV -> "PV" | Profile.HVM -> "HVM");
              Printf.sprintf "%.0f" box.Stats.bmin;
              Printf.sprintf "%.0f" box.Stats.q1;
              Printf.sprintf "%.0f" box.Stats.bmedian;
              Printf.sprintf "%.0f" box.Stats.q3;
              Printf.sprintf "%.0f" box.Stats.bmax;
            ]
            :: !rows;
          boxes :=
            ( Printf.sprintf "%-8s %-3s" (Profile.benchmark_name b)
                (match mode with Profile.PV -> "PV" | Profile.HVM -> "HVM"),
              box )
            :: !boxes)
        [ Profile.PV; Profile.HVM ])
    benchmarks;
  print
    (R.table
       ~header:[ "benchmark"; "mode"; "min"; "q1"; "median"; "q3"; "max" ]
       ~rows:(List.rev !rows));
  (* Box plots on a log10 axis, as in the paper (1K to 1000K). *)
  printf "\nlog10 activation frequency, 1K %s 1000K\n"
    (String.make 44 ' ');
  List.iter
    (fun (label, box) ->
      let log_box =
        {
          Stats.bmin = log10 box.Stats.bmin;
          q1 = log10 box.Stats.q1;
          bmedian = log10 box.Stats.bmedian;
          q3 = log10 box.Stats.q3;
          bmax = log10 box.Stats.bmax;
        }
      in
      printf "%s |%s|\n" label
        (R.box_plot_row ~width:56 ~lo:3.0 ~hi:6.0 log_box))
    (List.rev !boxes);
  printf
    "\npaper: PV bands between 5K/s and 100K/s (freqmine peaking ~650K/s);\n\
     HVM mostly between 2K/s and 10K/s; PV generally above HVM.\n"

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print (R.section "Table I: selected features for VM transition detection");
  print (Format.asprintf "%a" Features.pp_table1 ())

(* ------------------------------------------------------------------ *)
(* SSIII-B: classifier training and accuracy                            *)
(* ------------------------------------------------------------------ *)

let accuracy () =
  print (R.section "SIII-B: classifier construction and accuracy");
  let t = Lazy.force trained in
  let corpus name (c : Training.corpus) =
    printf "%s: %d injection runs + %d fault-free runs -> %d samples (%d correct, %d incorrect)\n"
      name c.Training.injection_runs c.Training.fault_free_runs
      (Dataset.length c.Training.dataset)
      c.Training.correct c.Training.incorrect
  in
  corpus "training" t.Training.train_corpus;
  corpus "testing " t.Training.test_corpus;
  let eval name tree (c : Metrics.confusion) =
    printf
      "%-13s accuracy %.1f%%  false-positive rate %.2f%%  (depth %d, %d nodes, %d leaves)\n"
      name
      (pct_of_fraction (Metrics.accuracy c))
      (pct_of_fraction (Metrics.false_positive_rate c))
      (Tree.depth tree) (Tree.node_count tree) (Tree.leaf_count tree)
  in
  eval "decision tree" t.Training.decision_tree t.Training.decision_tree_eval;
  eval "random tree" t.Training.random_tree t.Training.random_tree_eval;
  printf
    "\npaper: 12,024 training samples (10,280/1,744), 6,596 testing samples\n\
     (5,295/1,301); decision tree 96.1%%, random tree 98.6%%, FP rate 0.7%%.\n"

(* ------------------------------------------------------------------ *)
(* Fig 6: a sample decision tree                                        *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print (R.section "Fig 6: a sample decision tree");
  let t = Lazy.force trained in
  let small =
    Tree.train
      ~config:{ Tree.default_config with max_depth = 3 }
      t.Training.train_corpus.Training.dataset
  in
  print (Format.asprintf "%a" Tree.pp small);
  printf "\nrules:\n";
  List.iter (fun r -> printf "  %s\n" r) (Tree.rules small)

(* ------------------------------------------------------------------ *)
(* Fig 7: fault-free performance overhead                               *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  print (R.section "Fig 7: normalized performance overhead of Xentry");
  let rows =
    Cost_model.fig7 ~tree_comparisons:(deployed_tree_comparisons ()) ~seed:7 ()
  in
  print
    (R.table
       ~header:
         [ "benchmark"; "runtime avg"; "runtime max"; "runtime+VMT avg";
           "runtime+VMT max" ]
       ~rows:
         (List.map
            (fun (name, runtime, full) ->
              [
                name;
                R.percent (pct_of_fraction runtime.Cost_model.avg);
                R.percent (pct_of_fraction runtime.Cost_model.max);
                R.percent (pct_of_fraction full.Cost_model.avg);
                R.percent (pct_of_fraction full.Cost_model.max);
              ])
            rows));
  let avg =
    List.fold_left (fun acc (_, _, f) -> acc +. f.Cost_model.avg) 0.0 rows
    /. float_of_int (List.length rows)
  in
  printf "AVG (runtime+VMT): %s\n" (R.percent (pct_of_fraction avg));
  print
    (R.grouped_bars ~series_names:[ "runtime"; "runtime+VMT" ]
       (List.map
          (fun (name, runtime, full) ->
            ( name,
              [
                pct_of_fraction runtime.Cost_model.avg;
                pct_of_fraction full.Cost_model.avg;
              ] ))
          rows));
  printf
    "paper: four benchmarks under 1%%, bzip2 as low as 0.19%%, postmark\n\
     worst (avg 2.5%%, max 11.7%%); runtime detection alone nearly free.\n"

(* ------------------------------------------------------------------ *)
(* Fig 8: overall detection coverage                                    *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  print (R.section "Fig 8: overall detection results");
  let per_benchmark = Lazy.force campaign_records in
  let rows =
    List.map
      (fun (b, records) ->
        let s = Report.summarize records in
        let pcts = Report.technique_percentages s in
        Profile.benchmark_name b
        :: List.map (fun (_, p) -> R.percent p) pcts
        @ [ string_of_int s.Report.manifested ])
      per_benchmark
  in
  let merged = Lazy.force merged_summary in
  let avg_row =
    "AVG"
    :: List.map
         (fun (_, p) -> R.percent p)
         (Report.technique_percentages merged)
    @ [ string_of_int merged.Report.manifested ]
  in
  print
    (R.table
       ~header:
         [ "benchmark"; "H/W exception"; "S/W assertion"; "VM transition";
           "RAS record"; "undetected"; "manifested" ]
       ~rows:(rows @ [ avg_row ]));
  printf "overall coverage: %s of manifested faults detected\n"
    (R.percent (pct_of_fraction merged.Report.coverage));
  printf "injections: %d, activated: %d, manifested: %d\n"
    merged.Report.total_injections merged.Report.activated
    merged.Report.manifested;
  printf
    "\npaper: coverage up to 99.4%%, average 97.6%%; H/W exceptions 85.1%%,\n\
     S/W assertions 5.2%%, VM transition detection 6.9%% of injected faults.\n"

(* ------------------------------------------------------------------ *)
(* Fig 9: detecting long latency errors                                 *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  print (R.section "Fig 9: detection coverage of long latency errors");
  let s = Lazy.force merged_summary in
  print
    (R.table
       ~header:[ "consequence"; "detected"; "undetected"; "coverage" ]
       ~rows:
         (List.map
            (fun (kind, detected, undetected) ->
              [
                Outcome.long_name kind;
                string_of_int detected;
                string_of_int undetected;
                (if detected + undetected = 0 then "n/a"
                 else
                   R.percent
                     (100.0 *. float_of_int detected
                     /. float_of_int (detected + undetected)));
              ])
            s.Report.long_latency_by_consequence));
  print
    (R.bar_chart ~unit_label:"% detected"
       (List.filter_map
          (fun (kind, d, u) ->
            if d + u = 0 then None
            else
              Some
                ( Outcome.long_name kind,
                  100.0 *. float_of_int d /. float_of_int (d + u) ))
          s.Report.long_latency_by_consequence));
  printf
    "\npaper: 92.6%% of APP SDC and 96.8%% of APP crash cases detected; our\n\
     substrate's shorter data paths leave more silent (signature-identical)\n\
     corruptions, so absolute coverage here is lower (see EXPERIMENTS.md).\n"

(* ------------------------------------------------------------------ *)
(* Fig 10: detection latency CDF                                        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  print (R.section "Fig 10: CDF of detection latency (instructions)");
  let s = Lazy.force merged_summary in
  (* The paper's Fig 10 x-axis spans up to 1,000 instructions; clip the
     watchdog tail the same way (the printed per-technique stats below
     cover the full distributions). *)
  let series =
    List.filter_map
      (fun (technique, latencies) ->
        if Array.length latencies < 2 then None
        else
          let cdf =
            Stats.cdf_of_samples (Array.map float_of_int latencies)
          in
          let points =
            Array.of_list
              (List.filter
                 (fun (x, _) -> x <= 1000.0)
                 (Array.to_list (Stats.cdf_points cdf)))
          in
          if Array.length points < 2 then None
          else Some (Framework.technique_name technique, points))
      s.Report.latencies_by_technique
  in
  (* Later-listed series paint over earlier ones in the ASCII grid, so
     draw the transition-detection curve first to keep it visible. *)
  print (R.cdf_plot ~width:64 ~height:14 (List.rev series));
  List.iter
    (fun (technique, latencies) ->
      if Array.length latencies > 0 then begin
        let fl = Array.map float_of_int latencies in
        printf
          "%-24s n=%-6d median=%-6.0f p95=%-6.0f  below 700: %s\n"
          (Framework.technique_name technique)
          (Array.length latencies) (Stats.median fl) (Stats.quantile fl 0.95)
          (R.percent
             (100.0 *. Report.latency_fraction_below s technique 700))
      end)
    s.Report.latencies_by_technique;
  printf
    "\npaper: ~95%% of VM-transition detections within 700 instructions;\n\
     hardware exceptions and assertions generally shorter.\n"


(* ------------------------------------------------------------------ *)
(* Table II: undetected faults                                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  print (R.section "Table II: undetected faults");
  let s = Lazy.force merged_summary in
  print
    (R.table
       ~header:[ "class"; "share"; "count" ]
       ~rows:
         (List.map2
            (fun (name, p) (_, count) ->
              [ name; R.percent p; string_of_int count ])
            (Report.undetected_percentages s)
            s.Report.undetected_breakdown));
  printf "\npaper: Mis-Classify 10%%, Stack Values 20%%, Time Values 53%%, Other 17%%.\n"

(* ------------------------------------------------------------------ *)
(* Fig 11: recovery overhead with false positives                       *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  print (R.section "Fig 11: recovery overhead with false positive cases");
  let rows = Recovery.fig11 ~trials:100 ~seed:11 () in
  print
    (R.table
       ~header:[ "benchmark"; "avg"; "min"; "max" ]
       ~rows:
         (List.map
            (fun (name, s) ->
              [
                name;
                R.percent (pct_of_fraction s.Recovery.avg);
                R.percent (pct_of_fraction s.Recovery.min);
                R.percent (pct_of_fraction s.Recovery.max);
              ])
            rows));
  let avg =
    List.fold_left (fun acc (_, s) -> acc +. s.Recovery.avg) 0.0 rows
    /. float_of_int (List.length rows)
  in
  printf "AVG: %s\n" (R.percent (pct_of_fraction avg));
  print
    (R.bar_chart ~unit_label:"%"
       (List.map (fun (n, s) -> (n, pct_of_fraction s.Recovery.avg)) rows));
  printf
    "\npaper: 2.7%% on average, mcf/bzip2 about 1.6%%, postmark 6.3%%;\n\
     max-min spread below 0.03%%.\n"

(* ------------------------------------------------------------------ *)
(* Ablation: detector design choices                                    *)
(* ------------------------------------------------------------------ *)

let project_features dataset keep =
  let names = Dataset.feature_names dataset in
  let kept_names = Array.of_list (List.map (fun i -> names.(i)) keep) in
  Dataset.create ~feature_names:kept_names ~n_classes:(Dataset.n_classes dataset)
    (Array.to_list (Dataset.samples dataset)
    |> List.map (fun s ->
           {
             Dataset.features =
               Array.of_list (List.map (fun i -> s.Dataset.features.(i)) keep);
             label = s.Dataset.label;
           }))

let ablation () =
  print (R.section "Ablation: detector design choices");
  let t = Lazy.force trained in
  let train = t.Training.train_corpus.Training.dataset in
  let test = t.Training.test_corpus.Training.dataset in
  let acc tree ds = pct_of_fraction (Metrics.accuracy (Metrics.evaluate tree ds)) in
  (* 1. Tree depth sweep (the study the paper omits for space). *)
  printf "tree depth sweep (decision tree):\n";
  print
    (R.table
       ~header:[ "max depth"; "test accuracy"; "nodes" ]
       ~rows:
         (List.map
            (fun depth ->
              let tree =
                Tree.train
                  ~config:
                    { Tree.default_config with max_depth = depth; min_gain = 1e-6 }
                  train
              in
              [
                string_of_int depth;
                R.percent (acc tree test);
                string_of_int (Tree.node_count tree);
              ])
            [ 2; 4; 8; 12; 16; 24 ]));
  (* 2. Feature ablation: drop each Table I feature. *)
  printf "feature ablation (random tree, drop one feature):\n";
  let full_names = Dataset.feature_names train in
  let all_idx = List.init (Array.length full_names) (fun i -> i) in
  print
    (R.table
       ~header:[ "features"; "test accuracy" ]
       ~rows:
         (List.map
            (fun dropped ->
              let keep = List.filter (fun i -> i <> dropped) all_idx in
              let tr = project_features train keep in
              let te = project_features test keep in
              let tree =
                Tree.train
                  ~config:
                    {
                      (Tree.random_tree_config
                         ~n_features:(List.length keep) ~seed:5)
                      with
                      max_depth = 24;
                      min_gain = 1e-6;
                    }
                  tr
              in
              [
                Printf.sprintf "without %s" full_names.(dropped);
                R.percent (acc tree te);
              ])
            all_idx));
  (* 3. Classifier family comparison (the paper's future-work axis). *)
  printf "classifier family:\n";
  let forest = Forest.train ~trees:15 ~seed:9 train in
  let forest_eval = Metrics.evaluate_predict (Forest.predict forest) test in
  print
    (R.table
       ~header:[ "classifier"; "test accuracy"; "FP rate"; "per-entry cost" ]
       ~rows:
         [
           [
             "decision tree";
             R.percent
               (pct_of_fraction (Metrics.accuracy t.Training.decision_tree_eval));
             R.percent
               (pct_of_fraction
                  (Metrics.false_positive_rate t.Training.decision_tree_eval));
             Printf.sprintf "%d cmps" (Tree.max_comparisons t.Training.decision_tree);
           ];
           [
             "random tree";
             R.percent
               (pct_of_fraction (Metrics.accuracy t.Training.random_tree_eval));
             R.percent
               (pct_of_fraction
                  (Metrics.false_positive_rate t.Training.random_tree_eval));
             Printf.sprintf "%d cmps" (Tree.max_comparisons t.Training.random_tree);
           ];
           [
             "bagged forest (15)";
             R.percent (pct_of_fraction (Metrics.accuracy forest_eval));
             R.percent
               (pct_of_fraction (Metrics.false_positive_rate forest_eval));
             Printf.sprintf "%d cmps"
               (Array.fold_left
                  (fun acc tr -> acc + Tree.max_comparisons tr)
                  0 (Forest.trees forest));
           ];
         ]);
  (* 4. Training set size sweep. *)
  printf "training-set size sweep (random tree):\n";
  let rng = Rng.create 13 in
  print
    (R.table
       ~header:[ "fraction"; "samples"; "test accuracy" ]
       ~rows:
         (List.map
            (fun fraction ->
              let sub, _ =
                Dataset.train_test_split (Rng.split rng) train
                  ~train_fraction:fraction
              in
              let tree =
                Tree.train
                  ~config:
                    {
                      (Tree.random_tree_config ~n_features:5 ~seed:3) with
                      max_depth = 24;
                      min_gain = 1e-6;
                    }
                  sub
              in
              [
                Printf.sprintf "%.0f%%" (100.0 *. fraction);
                string_of_int (Dataset.length sub);
                R.percent (acc tree test);
              ])
            [ 0.1; 0.25; 0.5; 1.0 ]));
  (* 5. Detection-threshold sweep: the coverage / false-positive
     trade-off the deployed tree's leaf frequencies expose. *)
  printf "detection-threshold sweep (thresholded random tree):\n";
  print
    (R.table
       ~header:[ "P(incorrect) threshold"; "recall"; "FP rate" ]
       ~rows:
         (List.map
            (fun tau ->
              let det =
                Transition_detector.with_threshold t.Training.random_tree
                  ~min_incorrect_probability:tau
              in
              let predict features =
                match Transition_detector.classify_features det features with
                | Transition_detector.Incorrect, _ -> 1
                | Transition_detector.Correct, _ -> 0
              in
              let c = Metrics.evaluate_predict predict test in
              [
                Printf.sprintf "%.2f" tau;
                R.percent (pct_of_fraction (Metrics.recall c));
                R.percent (pct_of_fraction (Metrics.false_positive_rate c));
              ])
            [ 0.05; 0.15; 0.30; 0.50; 0.75 ]))

(* ------------------------------------------------------------------ *)
(* PV vs HVM detection coverage (extension)                             *)
(* ------------------------------------------------------------------ *)

let modes () =
  print (R.section "PV vs HVM detection coverage (extension)");
  let det = Lazy.force detector in
  let injections = scaled 2_000 in
  let rows =
    List.concat_map
      (fun mode ->
        List.map
          (fun b ->
            let s =
              Report.summarize
                (Campaign.execute
                   {
                     (Campaign.Config.make ~detector:det ~jobs:!jobs
                        ~benchmark:b ~injections ~seed:91 ())
                     with
                     Campaign.mode;
                   })
            in
            let t = s.Report.techniques in
            let pct n =
              R.percent
                (100.0 *. float_of_int n /. float_of_int (max 1 s.Report.manifested))
            in
            [
              Profile.benchmark_name b;
              (match mode with Profile.PV -> "PV" | Profile.HVM -> "HVM");
              string_of_int s.Report.manifested;
              R.percent (pct_of_fraction s.Report.coverage);
              pct t.Report.hw_exception;
              pct t.Report.sw_assertion;
              pct t.Report.vm_transition;
            ])
          [ Profile.Mcf; Profile.Bzip2; Profile.Postmark ])
      [ Profile.PV; Profile.HVM ]
  in
  print
    (R.table
       ~header:
         [ "benchmark"; "mode"; "manifested"; "coverage"; "hw"; "sw"; "vmt" ]
       ~rows);
  printf
    "\nThe paper's fault-injection study runs para-virtualized guests; the\n\
     same framework covers hardware-assisted mode, whose exit mix shifts\n\
     toward exceptions and interrupts (Fig 3's HVM bands) without moving\n\
     the coverage materially - the detection channels are per-execution,\n\
     not per-mode.\n"

(* ------------------------------------------------------------------ *)
(* SII-B motivation: hypervisor-context soft-error exposure            *)
(* ------------------------------------------------------------------ *)

let exposure () =
  print
    (R.section
       "SII-B motivation: hypervisor-context residency and fault exposure");
  let cpu_ips = 2.13e9 in
  let rng = Rng.create 23 in
  let rows =
    List.concat_map
      (fun b ->
        let p = Profile.get b in
        List.map
          (fun mode ->
            let rate =
              let total = ref 0.0 in
              for _ = 1 to 40 do
                total := !total +. Profile.sample_activation_rate p mode rng
              done;
              !total /. 40.0
            in
            let len = Profile.mean_handler_length p mode in
            let residency = rate *. len /. cpu_ips in
            [
              Profile.benchmark_name b;
              (match mode with Profile.PV -> "PV" | Profile.HVM -> "HVM");
              Printf.sprintf "%.0f/s" rate;
              Printf.sprintf "%.0f" len;
              R.percent (100.0 *. residency);
            ])
          [ Profile.PV; Profile.HVM ])
      benchmarks
  in
  print
    (R.table
       ~header:
         [ "benchmark"; "mode"; "activations"; "mean handler instrs";
           "host-mode residency" ]
       ~rows);
  printf
    "\nResidency approximates the fraction of CPU time spent in hypervisor\n\
     context - the window in which a soft error strikes the hypervisor\n\
     rather than a (fault-isolated) guest.  On dedicated I/O cores the\n\
     paper notes this approaches full utilization, which is the SII-B\n\
     argument for protecting the hypervisor at all.\n"

(* ------------------------------------------------------------------ *)
(* Recovery study (extension: the paper's sketched recovery, closed)   *)
(* ------------------------------------------------------------------ *)

let recovery () =
  print
    (R.section
       "Recovery study (extension: SVI checkpoint + re-execution, implemented)");
  let det = Lazy.force detector in
  let injections = scaled 2_000 in
  let rows =
    List.map
      (fun b ->
        let r =
          Recovery_study.study ~seed:31 ~benchmark:b ~injections
            (Pipeline.Config.make ~detector:det ())
        in
        [
          Profile.benchmark_name b;
          string_of_int r.Recovery_study.detected;
          string_of_int r.Recovery_study.recovered_exactly;
          string_of_int r.Recovery_study.recovery_mismatches;
          string_of_int r.Recovery_study.undetected_manifested;
          Printf.sprintf "%d KiB" (r.Recovery_study.checkpoint_bytes / 1024);
        ])
      benchmarks
  in
  print
    (R.table
       ~header:
         [ "benchmark"; "detected"; "recovered exactly"; "mismatches";
           "undetected (damage stands)"; "checkpoint" ]
       ~rows);
  printf
    "\nEvery fault Xentry detects is detected before VM entry, so restoring\n\
     the per-exit checkpoint and re-executing reproduces the golden host\n\
     bit-exactly - the enabling property the paper claims for low-cost\n\
     recovery (SI, SVI).  Undetected faults are never recovered:\n\
     detection coverage is the recovery ceiling.\n"

(* ------------------------------------------------------------------ *)
(* Hardening ablation (extension: SVI selective value duplication)     *)
(* ------------------------------------------------------------------ *)

let hardening () =
  print
    (R.section "Hardening ablation (extension: SVI selective value duplication)");
  printf "static handler size: baseline %d instructions, hardened %d (+%.0f%%)
"
    (Handlers.static_instruction_count ())
    (Handlers.static_instruction_count ~hardened:true ())
    (100.0
    *. (float_of_int (Handlers.static_instruction_count ~hardened:true ())
        /. float_of_int (Handlers.static_instruction_count ())
       -. 1.0));
  let injections = scaled 3_000 in
  let campaign hardened b =
    Report.summarize
      (Campaign.execute
         (Campaign.Config.make ~hardened ~jobs:!jobs ~benchmark:b ~injections
            ~seed:5 ()))
  in
  let rows =
    List.concat_map
      (fun b ->
        List.map
          (fun hardened ->
            let s = campaign hardened b in
            let undet_pct =
              100.0
              *. float_of_int s.Report.techniques.Report.undetected
              /. float_of_int (max 1 s.Report.manifested)
            in
            let class_count cls =
              List.assoc cls s.Report.undetected_breakdown
            in
            [
              Profile.benchmark_name b;
              (if hardened then "hardened" else "baseline");
              string_of_int s.Report.manifested;
              R.percent undet_pct;
              string_of_int (class_count Outcome.Stack_values);
              string_of_int (class_count Outcome.Time_values);
              string_of_int (class_count Outcome.Other_values);
            ])
          [ false; true ])
      [ Profile.Postmark; Profile.Mcf; Profile.Bzip2 ]
  in
  print
    (R.table
       ~header:
         [ "benchmark"; "variant"; "manifested"; "undetected"; "stack";
           "time"; "other" ]
       ~rows);
  printf
    "\nSVI's proposed duplication (verify frame slots against live\n\
     registers, double rdtsc reads, duplicated time scaling) trims the\n\
     silent stack- and time-value channels at the cost of longer\n\
     handlers.  Faults that strike before the first copy exists remain\n\
     irreducible, as the paper anticipates ('some of such errors may\n\
     be captured..., but not all').\n"

(* ------------------------------------------------------------------ *)
(* Speedup: the parallel campaign engine against its serial fallback   *)
(* ------------------------------------------------------------------ *)

let speedup () =
  print (R.section "Parallel campaign engine: speedup and determinism");
  let injections = scaled 2_000 in
  let par_jobs = max 2 !jobs in
  let config =
    Campaign.Config.make ~benchmark:Profile.Postmark ~injections ~seed:2014 ()
  in
  let timed j =
    let t0 = Unix.gettimeofday () in
    let records = Campaign.execute { config with Campaign.jobs = Some j } in
    (Unix.gettimeofday () -. t0, records)
  in
  let serial_s, serial_records = timed 1 in
  let parallel_s, parallel_records = timed par_jobs in
  let identical = serial_records = parallel_records in
  let ratio = serial_s /. Float.max 1e-9 parallel_s in
  printf "%d injections (%d shards of %d), postmark PV\n" injections
    ((injections + Campaign.shard_size - 1) / Campaign.shard_size)
    Campaign.shard_size;
  printf "jobs=1   %.3fs\n" serial_s;
  printf "jobs=%-3d %.3fs   speedup %.2fx\n" par_jobs parallel_s ratio;
  printf "records bit-identical across jobs: %b\n" identical;
  if par_jobs = 2 && !jobs < 2 then
    printf "(pass -j N or set XENTRY_JOBS to sweep a wider worker count)\n";
  record_phase "speedup-serial" serial_s injections;
  record_phase "speedup-parallel" parallel_s injections;
  speedup_result := Some (injections, par_jobs, serial_s, parallel_s, identical)

(* ------------------------------------------------------------------ *)
(* Resume: shard-journal checkpoint overhead and restart speedup       *)
(* ------------------------------------------------------------------ *)

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun q -> rm_rf (Filename.concat p q)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let resume () =
  print (R.section "Shard journal: checkpoint overhead and resume speedup");
  let injections = scaled 2_000 in
  let config =
    Campaign.Config.make ~jobs:!jobs ~benchmark:Profile.Postmark ~injections
      ~seed:2718 ()
  in
  let nshards = (injections + Campaign.shard_size - 1) / Campaign.shard_size in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xentry-bench-resume-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let checkpoint () =
    match Xentry_store.Journal.for_campaign ~dir config with
    | Ok cp -> cp
    | Error e -> failwith (Xentry_store.Journal.open_error_message e)
  in
  let timed ?checkpoint () =
    let t0 = Unix.gettimeofday () in
    let records = Campaign.execute ?checkpoint config in
    (Unix.gettimeofday () -. t0, records)
  in
  (* Four runs of the same campaign: no journal; journaling every
     shard as it completes (cold); replaying a complete journal
     (warm); and resuming after "losing" the second half of the
     journal, the mid-campaign-crash shape. *)
  let plain_s, plain_records = timed () in
  let cold_s, cold_records = timed ~checkpoint:(checkpoint ()) () in
  let warm_s, warm_records = timed ~checkpoint:(checkpoint ()) () in
  for i = nshards / 2 to nshards - 1 do
    let f = Xentry_store.Journal.shard_file ~dir i in
    if Sys.file_exists f then Sys.remove f
  done;
  let half_s, half_records = timed ~checkpoint:(checkpoint ()) () in
  let identical =
    cold_records = plain_records
    && warm_records = plain_records
    && half_records = plain_records
  in
  printf "%d injections (%d shards of %d), postmark PV, jobs=%d\n" injections
    nshards Campaign.shard_size !jobs;
  printf "no journal            %.3fs\n" plain_s;
  printf "cold (write journal)  %.3fs   overhead %+.1f%%\n" cold_s
    (100.0 *. ((cold_s /. Float.max 1e-9 plain_s) -. 1.0));
  printf "warm (replay journal) %.3fs   speedup %.1fx\n" warm_s
    (plain_s /. Float.max 1e-9 warm_s);
  printf "resume (half lost)    %.3fs   speedup %.1fx\n" half_s
    (plain_s /. Float.max 1e-9 half_s);
  printf "records bit-identical across all four runs: %b\n" identical;
  if not identical then begin
    Printf.eprintf "FATAL: journaled campaign records diverged\n%!";
    exit 1
  end;
  record_phase "resume-plain" plain_s injections;
  record_phase "resume-cold" cold_s injections;
  record_phase "resume-warm" warm_s injections;
  record_phase "resume-half" half_s injections;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Campaign planner: def-use pruning + snapshot fast-forwarding        *)
(* ------------------------------------------------------------------ *)

type campaign_bench = {
  cb_total : int;  (** records per run (injections * faults_per_run) *)
  cb_legacy_s : float;
      (** planner off, pre-planner campaign shape: one golden run per
          injection *)
  cb_exhaustive_s : float;
  cb_cold_s : float;  (** planned, recording traces into a cold cache *)
  cb_warm_s : float;  (** planned, traces served from the cache *)
  cb_pruned_fraction : float;
  cb_collapsed_fraction : float;
  cb_fast_forward_fraction : float;
  cb_identical : bool;
}

let campaign_bench_result : campaign_bench option ref = ref None

let campaign () =
  print
    (R.section "Campaign planner: def-use pruning + snapshot fast-forwarding");
  let injections = scaled 500 in
  let faults_per_run = 64 in
  let total = injections * faults_per_run in
  (* A right-sized watchdog budget: postmark's longest fault-free
     handler is ~1,100 dynamic instructions, so 2,000 fuel never
     truncates a golden run while faulted executions that hang (and
     trip the watchdog) burn 2,000 steps instead of the default
     20,000.  Both paths run with the same fuel, so records stay
     comparable; the default budget mostly measures how long the
     simulator spins inside hung runs that both paths execute
     identically. *)
  let fuel = 2_000 in
  let base =
    Campaign.Config.make ~jobs:!jobs ~benchmark:Profile.Postmark ~injections
      ~seed:2014 ~fuel ~faults_per_run ~prune:true ~snapshot_interval:64 ()
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xentry-bench-traces-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let traces () =
    match Xentry_store.Trace_cache.for_campaign ~dir base with
    | Ok tc -> tc
    | Error e -> failwith (Xentry_store.Trace_cache.open_error_message e)
  in
  let timed ?traces config =
    let t0 = Unix.gettimeofday () in
    let records, stats = Campaign.execute_with_stats ?traces config in
    (Unix.gettimeofday () -. t0, records, stats)
  in
  (* Four runs: the pre-planner campaign shape (planner off AND no
     golden sharing — one golden run per injection, exactly the loop
     this planner replaced; its fault stream necessarily differs, so
     it is the speedup baseline, not an identity leg); every fault
     simulated under the shared-golden shape; planned against freshly
     recorded traces (cold cache); planned against cached traces
     (warm — the repeated-campaign steady state, golden runs on the
     fast path with survivors forked straight off the paused golden
     run). *)
  let legacy_s, _, _ =
    timed
      (Campaign.Config.make ~jobs:!jobs ~benchmark:Profile.Postmark
         ~injections:total ~seed:2014 ~fuel ~faults_per_run:1 ~prune:false
         ~snapshot_interval:64 ())
  in
  let exhaustive_s, exhaustive_records, _ =
    timed { base with Campaign.prune = false }
  in
  let cold_s, cold_records, _ = timed ~traces:(traces ()) base in
  let warm_s, warm_records, stats = timed ~traces:(traces ()) base in
  rm_rf dir;
  let identical =
    cold_records = exhaustive_records && warm_records = exhaustive_records
  in
  let planned = float_of_int (max 1 stats.Campaign.planned) in
  let pruned_fraction = float_of_int stats.Campaign.pruned /. planned in
  let collapsed_fraction = float_of_int stats.Campaign.collapsed /. planned in
  let ff_fraction = float_of_int stats.Campaign.fast_forwarded /. planned in
  let eff s = float_of_int total /. Float.max 1e-9 s in
  printf
    "%d golden runs x %d faults = %d injections, postmark PV, fuel=%d, \
     jobs=%d\n"
    injections faults_per_run total fuel !jobs;
  printf "planner off (1 golden/injection)  %.3fs   %10.0f inj/s\n" legacy_s
    (eff legacy_s);
  printf "exhaustive (shared golden)        %.3fs   %10.0f inj/s\n"
    exhaustive_s (eff exhaustive_s);
  printf "planned (cold cache)              %.3fs   %10.0f inj/s\n" cold_s
    (eff cold_s);
  printf "planned (warm cache)              %.3fs   %10.0f inj/s\n" warm_s
    (eff warm_s);
  printf
    "pruning + fast-forwarding on vs. off: %.1fx effective injections/s \
     (%.1fx vs. shared-golden exhaustive)\n"
    (legacy_s /. Float.max 1e-9 warm_s)
    (exhaustive_s /. Float.max 1e-9 warm_s);
  printf
    "pruned %.1f%%  class-collapsed %.1f%%  fast-forwarded %.1f%%  simulated \
     %d of %d\n"
    (100.0 *. pruned_fraction)
    (100.0 *. collapsed_fraction)
    (100.0 *. ff_fraction) stats.Campaign.simulated stats.Campaign.planned;
  printf "records bit-identical (exhaustive = cold = warm): %b\n" identical;
  if not identical then begin
    Printf.eprintf "FATAL: planned campaign records diverged from exhaustive\n%!";
    exit 1
  end;
  record_phase "campaign-legacy" legacy_s total;
  record_phase "campaign-exhaustive" exhaustive_s total;
  record_phase "campaign-planned-cold" cold_s total;
  record_phase "campaign-planned-warm" warm_s total;
  campaign_bench_result :=
    Some
      {
        cb_total = total;
        cb_legacy_s = legacy_s;
        cb_exhaustive_s = exhaustive_s;
        cb_cold_s = cold_s;
        cb_warm_s = warm_s;
        cb_pruned_fraction = pruned_fraction;
        cb_collapsed_fraction = collapsed_fraction;
        cb_fast_forward_fraction = ff_fraction;
        cb_identical = identical;
      }

(* ------------------------------------------------------------------ *)
(* Serve: sustained throughput and shed rate of the request engine     *)
(* ------------------------------------------------------------------ *)

module Serve = Xentry_serve.Server

(* --json: (scenario, offered rate, summary) per serve scenario. *)
let serve_results : (string * float * Serve.summary) list ref = ref []

let serve () =
  print
    (R.section
       "Streaming request engine: sustained throughput and load shedding");
  let serve_jobs = max 2 !jobs in
  let duration_s = Float.max 0.5 (Float.min 3.0 (3.0 *. scale)) in
  let base =
    Serve.make ~benchmark:Profile.Postmark ~streams:8 ~jobs:serve_jobs
      ~duration_s ~seed:2014 ~rate:1.0 ()
  in
  let per_worker = Serve.calibrate base in
  let capacity = per_worker *. float_of_int serve_jobs in
  printf
    "calibrated: %.0f req/s/worker x %d workers = %.0f req/s; %gs per \
     scenario\n%!"
    per_worker serve_jobs capacity duration_s;
  let scenario name factor =
    let rate = factor *. capacity in
    let cfg = { base with Serve.rate } in
    let s = Serve.run cfg in
    serve_results := (name, rate, s) :: !serve_results;
    record_phase ("serve-" ^ name) s.Serve.wall_s s.Serve.completed;
    [
      name;
      Printf.sprintf "%.0f" rate;
      Printf.sprintf "%.0f" s.Serve.throughput_rps;
      Printf.sprintf "%.0f us" (Serve.latency_quantile s 0.50);
      Printf.sprintf "%.0f us" (Serve.latency_quantile s 0.99);
      R.percent (100.0 *. Serve.shed_fraction s);
      s.Serve.rung_names.(s.Serve.deepest_rung);
      s.Serve.rung_names.(s.Serve.final_rung);
    ]
  in
  let rows = [ scenario "steady" 0.25; scenario "overload" 2.0 ] in
  print
    (R.table
       ~header:
         [ "scenario"; "offered/s"; "completed/s"; "p50"; "p99"; "shed";
           "deepest level"; "final level" ]
       ~rows);
  printf
    "\nCalibration is a single tight-loop domain, so it upper-bounds the\n\
     live service (which timeshares producer + workers over the machine's\n\
     cores).  The steady scenario offers 25%% of that bound and should\n\
     hold full detection on most machines; overload offers 2x the bound,\n\
     so the ingress queues fill, typed shedding caps the backlog, and the\n\
     degradation ladder trades detection coverage for service rate for as\n\
     long as the overload lasts.\n";
  (* Fault-storm failover: a mid-run window of injected bit flips with
     micro-reboot recovery.  Conservation under the storm is the
     exactly-once replay property — any lost or duplicated request
     breaks one of the two equations and fails the harness. *)
  let storm_rate = 0.25 *. capacity in
  let scfg =
    {
      base with
      Serve.rate = storm_rate;
      recovery = Serve.Microboot;
      storm =
        Some
          {
            Serve.storm_start = 0.2 *. duration_s;
            storm_end = 0.7 *. duration_s;
            storm_prob = 0.02;
          };
    }
  in
  let s = Serve.run scfg in
  serve_results := ("storm-microboot", storm_rate, s) :: !serve_results;
  record_phase "serve-storm-microboot" s.Serve.wall_s s.Serve.completed;
  printf
    "\nfault storm (2%% of requests, 20-70%% of the run, micro-reboot \
     failover):\n\
    \  injected %d  detected %d  micro-reboots %d\n\
    \  recovery p50 %.0f us  p99 %.0f us  availability %.4f\n\
    \  completed %d at %.0f req/s (p99 %.0f us)\n"
    s.Serve.injected s.Serve.detected s.Serve.recoveries
    (Serve.recovery_quantile s 0.50)
    (Serve.recovery_quantile s 0.99)
    s.Serve.availability s.Serve.completed s.Serve.throughput_rps
    (Serve.latency_quantile s 0.99);
  if
    s.Serve.offered <> s.Serve.admitted + s.Serve.shed_queue_full
    || s.Serve.admitted
       <> s.Serve.completed + s.Serve.shed_deadline + s.Serve.shed_draining
  then begin
    Printf.eprintf
      "FATAL: serve accounting broke under the fault storm (lost or \
       duplicated requests)\n\
       %!";
    exit 1
  end;
  if s.Serve.recoveries = 0 then
    printf "  (no fault detected this run: recovery path not exercised)\n";
  (* Pareto-driven ladder vs the fixed one: sweep the optimizer's
     candidate grid, build the ladder from the emitted front, and run
     the same overload under both.  The data-driven ladder must not
     give up completed requests relative to the hand-picked sequence
     (10% tolerance absorbs scheduler noise). *)
  let module O = Xentry_lifecycle.Optimizer in
  let module Ladder = Xentry_serve.Ladder in
  let det = Lazy.force detector in
  let t0 = Unix.gettimeofday () in
  let ocfg =
    O.default_config ~seed:2014
      ~injections:(max 200 (scaled 600))
      ~fault_free_runs:(max 100 (scaled 200))
      ~jobs:!jobs ~benchmark:Profile.Postmark ()
  in
  let sweep = O.sweep ~detector_version:(Detector.version det) ocfg ~detector:det in
  record_phase "optimize-sweep" (Unix.gettimeofday () -. t0) ocfg.O.injections;
  let front = sweep.O.front in
  let n_front = List.length front.Pareto.points in
  printf
    "\noptimizer sweep: %d candidates -> %d non-dominated rungs\n"
    (List.length sweep.O.all_points)
    n_front;
  List.iter
    (fun p -> printf "  %s\n" (Format.asprintf "%a" Pareto.pp_point p))
    front.Pareto.points;
  if n_front < 3 then begin
    Printf.eprintf
      "FATAL: optimizer emitted %d non-dominated rungs (expected >= 3)\n%!"
      n_front;
    exit 1
  end;
  let overload_pipeline = Pipeline.Config.make ~detector:det () in
  let overload cfg_ladder =
    Serve.run
      {
        base with
        Serve.rate = 2.0 *. capacity;
        pipeline = overload_pipeline;
        ladder = cfg_ladder;
      }
  in
  (* Completed-under-overload is scheduler-noisy (the ladder's path
     near the watermarks is chaotic), so judge medians of three
     interleaved runs per ladder, not single samples. *)
  let pareto_ladder =
    { Ladder.default_config with Ladder.rungs = Ladder.rungs_of_front front }
  in
  let fixed_runs, pareto_runs =
    let pairs =
      List.init 3 (fun _ ->
          (overload Ladder.default_config, overload pareto_ladder))
    in
    (List.map fst pairs, List.map snd pairs)
  in
  let median runs =
    match
      List.sort
        (fun a b -> compare a.Serve.completed b.Serve.completed)
        runs
    with
    | [ _; m; _ ] -> m
    | _ -> assert false
  in
  let fixed = median fixed_runs in
  let pareto = median pareto_runs in
  serve_results := ("overload-fixed-ladder", 2.0 *. capacity, fixed) :: !serve_results;
  serve_results := ("overload-pareto-ladder", 2.0 *. capacity, pareto) :: !serve_results;
  printf
    "overload, fixed ladder:  completed %d (deepest %s)\n\
     overload, pareto ladder: completed %d (deepest %s)\n"
    fixed.Serve.completed
    fixed.Serve.rung_names.(fixed.Serve.deepest_rung)
    pareto.Serve.completed
    pareto.Serve.rung_names.(pareto.Serve.deepest_rung);
  if
    float_of_int pareto.Serve.completed
    < 0.9 *. float_of_int fixed.Serve.completed
  then begin
    Printf.eprintf
      "FATAL: Pareto-driven ladder completed %d requests vs the fixed \
       ladder's %d (must match or beat it)\n\
       %!"
      pareto.Serve.completed fixed.Serve.completed;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Recover: ReHype-style micro-reboot vs the restart-everything        *)
(* baseline, at fault-injection scale                                  *)
(* ------------------------------------------------------------------ *)

module RecCampaign = Xentry_recover.Campaign

let recover_bench_result : RecCampaign.result option ref = ref None

let recover () =
  print
    (R.section
       "Micro-reboot recovery (extension: ReHype-style, vs restart baseline)");
  let injections = max 150 (scaled 2_000) in
  let cfg =
    {
      RecCampaign.default_config with
      RecCampaign.injections;
      pipeline = Pipeline.Config.make ~fuel:4000 ();
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = RecCampaign.run cfg in
  record_phase "recover-campaign" (Unix.gettimeofday () -. t0) injections;
  let rows =
    List.map
      (fun (c : RecCampaign.class_stats) ->
        [
          RecCampaign.class_name c.RecCampaign.cls;
          string_of_int c.RecCampaign.faults;
          string_of_int c.RecCampaign.recovered_exactly;
          string_of_int c.RecCampaign.mismatches;
          string_of_int c.RecCampaign.carryover;
        ])
      r.RecCampaign.classes
  in
  print
    (R.table
       ~header:
         [ "fault class"; "faults"; "recovered exactly"; "mismatches";
           "carryover" ]
       ~rows);
  printf
    "\nmicro-reboot: work recovered %d/%d, guest state lost %d\n\
     restart-everything: work lost %d, guest state lost %d (all domains \
     destroyed per fault)\n\
     MTTF improvement over restart: %s\n\
     boot image %d B (one-time) vs per-exit checkpoint %d B; reboot mean \
     %.0f ns, p99 %.0f ns\n"
    r.RecCampaign.micro_work_recovered r.RecCampaign.detected
    r.RecCampaign.micro_state_lost r.RecCampaign.restart_work_lost
    r.RecCampaign.restart_state_lost
    (if r.RecCampaign.mttf_improvement = Float.infinity then "inf (lost nothing)"
     else Printf.sprintf "%.1fx" r.RecCampaign.mttf_improvement)
    r.RecCampaign.image_bytes r.RecCampaign.checkpoint_bytes
    r.RecCampaign.reboot_ns_mean r.RecCampaign.reboot_ns_p99;
  (* Identity is a hard invariant, not a statistic: every detected
     fault must recover bit-exactly with zero carryover. *)
  if
    r.RecCampaign.micro_state_lost > 0
    || r.RecCampaign.micro_work_recovered <> r.RecCampaign.detected
  then begin
    Printf.eprintf
      "FATAL: micro-reboot identity violated (recovered %d of %d detected, \
       state lost %d)\n\
       %!"
      r.RecCampaign.micro_work_recovered r.RecCampaign.detected
      r.RecCampaign.micro_state_lost;
    exit 1
  end;
  recover_bench_result := Some r

(* ------------------------------------------------------------------ *)
(* Cluster: multi-process scale-out of campaigns and serve              *)
(* ------------------------------------------------------------------ *)

module CP = Xentry_cluster.Protocol
module Coordinator = Xentry_cluster.Coordinator
module Front = Xentry_cluster.Front

type cluster_leg = {
  clw : int;  (** worker processes *)
  clj : int;  (** domains per worker *)
  cls : float;  (** wall seconds *)
  cli : bool;  (** records identical to single-process baseline *)
}

type cluster_bench = {
  ck_injections : int;
  ck_shards : int;
  ck_domains : int;  (** total domain budget, equal across legs *)
  ck_legs : cluster_leg list;  (** first leg is the 1-process baseline *)
  ck_kill : (float * bool * bool) option;
      (** kill-leg seconds, identical, resume identical *)
  ck_serve : (int * Front.summary) option;  (** workers, front summary *)
}

let cluster_bench_result : cluster_bench option ref = ref None

(* The bench binary doubles as its own cluster worker: the cluster
   experiment re-executes [Sys.executable_name] with this argv (never
   fork — worker pools are domains). *)
let cluster_worker_argv sock jobs =
  [| Sys.executable_name; "--cluster-worker"; sock; string_of_int jobs |]

let spawn_cluster_worker sock jobs =
  Unix.create_process Sys.executable_name
    (cluster_worker_argv sock jobs)
    Unix.stdin Unix.stdout Unix.stderr

let reap_pid pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
let kill_pid pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let cluster () =
  print (R.section "Cluster: multi-process scale-out (socket coordinator)");
  let domains = max 4 !jobs in
  let injections = scaled 3_000 in
  let config =
    Campaign.Config.make ~benchmark:Profile.Postmark ~injections ~seed:2014 ()
  in
  let nshards = List.length (Campaign.shard_plan config) in
  let scratch name f =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xentry-bench-cluster-%d-%s" (Unix.getpid ()) name)
    in
    rm_rf dir;
    Sys.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let run_cluster ?checkpoint ?on_progress ~workers ~jobs_per dir =
    let sock = Filename.concat dir "coord.sock" in
    let pids = List.init workers (fun _ -> spawn_cluster_worker sock jobs_per) in
    (* Once the records are merged (or the run failed) workers are
       stateless; kill before reaping so a straggler that never reached
       the coordinator can't hold the reap for its connect retries. *)
    let finish () =
      List.iter kill_pid pids;
      List.iter reap_pid pids
    in
    match
      let t0 = Unix.gettimeofday () in
      let records =
        Coordinator.run ?checkpoint ?on_progress ~idle_timeout_s:30.
          ~listen:(CP.Unix_sock sock) config
      in
      (Unix.gettimeofday () -. t0, records, pids)
    with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  in
  let eff s = float_of_int injections /. Float.max 1e-9 s in
  (* Baseline: one process holding the whole domain budget. *)
  let t0 = Unix.gettimeofday () in
  let baseline = Campaign.execute { config with Campaign.jobs = Some domains } in
  let base_s = Unix.gettimeofday () -. t0 in
  record_phase "cluster-1-process" base_s injections;
  let legs = ref [ { clw = 1; clj = domains; cls = base_s; cli = true } ] in
  List.iter
    (fun workers ->
      let jobs_per = max 1 (domains / workers) in
      scratch (Printf.sprintf "w%d" workers) (fun dir ->
          let s, records, _ = run_cluster ~workers ~jobs_per dir in
          record_phase (Printf.sprintf "cluster-%d-process" workers) s injections;
          legs :=
            { clw = workers; clj = jobs_per; cls = s; cli = records = baseline }
            :: !legs))
    [ 2; 4 ];
  let legs = List.rev !legs in
  printf "%d injections, %d shards, postmark PV, %d total domains per leg\n"
    injections nshards domains;
  print
    (R.table
       ~header:[ "topology"; "seconds"; "eff inj/s"; "identical" ]
       ~rows:
         (List.map
            (fun l ->
              [
                Printf.sprintf "%d proc x %d domains" l.clw l.clj;
                Printf.sprintf "%.3f" l.cls;
                Printf.sprintf "%.0f" (eff l.cls);
                string_of_bool l.cli;
              ])
            legs));
  let leg4 = List.find (fun l -> l.clw = 4) legs in
  printf
    "4 processes vs 1: %.2fx effective injections/s at equal total domains\n\
     (process scaling needs cores: this host reports %d; a single OCaml\n\
     runtime also serialises in the shared major GC, which separate\n\
     processes do not)\n"
    (base_s /. Float.max 1e-9 leg4.cls)
    (Pool.recommended_jobs ());
  if not (List.for_all (fun l -> l.cli) legs) then begin
    Printf.eprintf
      "FATAL: distributed campaign records diverged from single-process run\n%!";
    exit 1
  end;
  (* Kill leg: SIGKILL one worker after the first shard lands; the
     journal plus lease reissue must still converge to the identical
     record list, and a warm resume must replay every shard. *)
  let kill_result =
    if nshards < 3 then begin
      printf "kill leg skipped: %d shard(s) at this scale (needs >= 3)\n"
        nshards;
      None
    end
    else
      scratch "kill" (fun dir ->
          let journal = Filename.concat dir "journal" in
          let checkpoint () =
            match Xentry_store.Journal.for_campaign ~dir:journal config with
            | Ok cp -> cp
            | Error e ->
                failwith (Xentry_store.Journal.open_error_message e)
          in
          let killed = ref false in
          let victim = ref None in
          let on_progress (p : Coordinator.progress) =
            if (not !killed) && p.Coordinator.completed < p.Coordinator.total
            then begin
              killed := true;
              Option.iter kill_pid !victim
            end
          in
          let sock = Filename.concat dir "coord.sock" in
          let pids = List.init 2 (fun _ -> spawn_cluster_worker sock 2) in
          victim := Some (List.hd pids);
          let t0 = Unix.gettimeofday () in
          let records =
            match
              Coordinator.run ~checkpoint:(checkpoint ()) ~on_progress
                ~idle_timeout_s:30. ~listen:(CP.Unix_sock sock) config
            with
            | r ->
                List.iter kill_pid pids;
                List.iter reap_pid pids;
                r
            | exception e ->
                List.iter kill_pid pids;
                List.iter reap_pid pids;
                raise e
          in
          let kill_s = Unix.gettimeofday () -. t0 in
          let resumed =
            Campaign.execute ~checkpoint:(checkpoint ())
              { config with Campaign.jobs = Some 1 }
          in
          let identical = records = baseline in
          let resume_identical = resumed = baseline in
          record_phase "cluster-kill-resume" kill_s injections;
          printf
            "worker killed mid-campaign: %.3fs, records identical %b; \
             journal resume identical %b\n"
            kill_s identical resume_identical;
          if not (identical && resume_identical) then begin
            Printf.eprintf
              "FATAL: records diverged after mid-campaign worker kill/resume\n%!";
            exit 1
          end;
          Some (kill_s, identical, resume_identical))
  in
  (* Serve leg: front tier over 2 worker processes, one killed at 40%
     of the run — the ring rebalances and the survivor absorbs the
     remapped streams. *)
  let serve_result =
    scratch "serve" (fun dir ->
        let workers = 2 in
        let jobs_per = max 1 (domains / workers) in
        let duration_s = Float.max 0.5 (Float.min 3.0 (3.0 *. scale)) in
        let base =
          Serve.make ~benchmark:Profile.Postmark ~streams:8 ~jobs:jobs_per
            ~duration_s ~seed:2014 ~rate:1.0 ()
        in
        let per_worker = Serve.calibrate base in
        let rate = 0.5 *. per_worker *. float_of_int (jobs_per * workers) in
        let cfg = { base with Serve.rate } in
        let sock = Filename.concat dir "front.sock" in
        let pids = List.init workers (fun _ -> spawn_cluster_worker sock jobs_per) in
        let killed = ref false in
        let on_tick ~elapsed =
          if (not !killed) && elapsed >= 0.4 *. duration_s then begin
            killed := true;
            kill_pid (List.hd pids)
          end
        in
        let summary =
          match Front.run ~on_tick ~listen:(CP.Unix_sock sock) ~workers cfg with
          | s ->
              List.iter kill_pid pids;
              List.iter reap_pid pids;
              s
          | exception e ->
              List.iter kill_pid pids;
              List.iter reap_pid pids;
              raise e
        in
        record_phase "cluster-serve-kill" summary.Front.wall_s
          summary.Front.completed;
        printf
          "serve front, %d workers (one killed at 40%%): %.0f req/s, p50 %.0f \
           us, p99 %.0f us\n\
           workers lost %d, streams remapped %d, shed (worker lost) %d\n"
          workers summary.Front.throughput_rps
          (Front.latency_quantile summary 0.50)
          (Front.latency_quantile summary 0.99)
          summary.Front.workers_lost summary.Front.streams_remapped
          summary.Front.shed_worker_lost;
        if summary.Front.workers_lost < 1 then begin
          Printf.eprintf "FATAL: serve kill leg never lost its worker\n%!";
          exit 1
        end;
        Some (workers, summary))
  in
  cluster_bench_result :=
    Some
      {
        ck_injections = injections;
        ck_shards = nshards;
        ck_domains = domains;
        ck_legs = legs;
        ck_kill = kill_result;
        ck_serve = serve_result;
      }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table/figure               *)
(* ------------------------------------------------------------------ *)

let micro () =
  print (R.section "Bechamel micro-benchmarks (pipeline kernels)");
  let open Bechamel in
  let open Toolkit in
  (* Pre-built state shared by the kernels. *)
  let host = Hypervisor.create ~seed:3 () in
  let profile = Profile.get Profile.Postmark in
  let rng = Rng.create 5 in
  let det = Lazy.force detector in
  let tree =
    match Transition_detector.classifier (Detector.model det) with
    | Transition_detector.Single_tree t | Transition_detector.Thresholded (t, _)
      ->
        t
    | Transition_detector.Ensemble _ -> assert false
  in
  let features = [| 30.0; 200.0; 20.0; 40.0; 10.0 |] in
  let snapshot =
    { Xentry_machine.Pmu.inst = 200; branches = 20; loads = 40; stores = 10 }
  in
  let latencies = Array.init 500 (fun i -> float_of_int (i * 3)) in
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Event_channel_op)
      ~args:[ 12L; 0L ] ~guest:[]
  in
  Hypervisor.prepare host req;
  let golden = Hypervisor.clone host in
  ignore (Hypervisor.execute golden req);
  let faulted = Hypervisor.clone host in
  ignore (Hypervisor.execute faulted req);
  let fault = Fault.reg Xentry_isa.Reg.Rip ~bit:4 ~step:20 in
  let tests =
    [
      Test.make ~name:"fig3:activation-rate-sample"
        (Staged.stage (fun () ->
             ignore (Profile.sample_activation_rate profile Profile.PV rng)));
      Test.make ~name:"table1:feature-extraction"
        (Staged.stage (fun () ->
             ignore (Features.of_run ~reason:Exit_reason.Softirq snapshot)));
      Test.make ~name:"accuracy:tree-predict"
        (Staged.stage (fun () -> ignore (Tree.predict tree features)));
      Test.make ~name:"fig7:overhead-model"
        (Staged.stage (fun () ->
             ignore
               (Cost_model.per_exit_seconds Cost_model.default_params
                  Framework.full_config ~tree_comparisons:12)));
      Test.make ~name:"fig8:handler-execution"
        (Staged.stage (fun () ->
             Hypervisor.prepare host req;
             ignore (Hypervisor.execute host req)));
      Test.make ~name:"fig8:host-clone"
        (Staged.stage (fun () -> ignore (Hypervisor.clone host)));
      Test.make ~name:"fig8:injected-execution"
        (Staged.stage (fun () ->
             let h = Hypervisor.clone host in
             ignore
               (Hypervisor.execute h ~inject:(Fault.to_injection fault) req)));
      Test.make ~name:"fig9:consequence-classification"
        (Staged.stage (fun () ->
             ignore (Classify.diffs ~golden ~faulted)));
      Test.make ~name:"fig10:latency-cdf"
        (Staged.stage (fun () -> ignore (Stats.cdf_of_samples latencies)));
      Test.make ~name:"table2:undetected-attribution"
        (Staged.stage (fun () ->
             ignore
               (Classify.undetected_class ~fault ~signature_differs:false
                  [ Classify.Global_time_diff ])));
      Test.make ~name:"fig11:recovery-trial"
        (Staged.stage (fun () ->
             ignore
               (Recovery.overhead Recovery.default_params profile
                  ~mean_handler_instructions:400.0 (Rng.copy rng) ~trials:1)));
      Test.make ~name:"core:evtchn-send"
        (Staged.stage (fun () ->
             Event_channel.send (Hypervisor.memory host) ~dom:1 ~port:7));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"xentry" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f ns/run" x
        | _ -> "n/a"
      in
      rows := [ name; estimate ] :: !rows)
    results;
  print
    (R.table ~header:[ "kernel"; "time" ]
       ~rows:(List.sort compare !rows));

  (* Engine comparison: dynamic steps per second executing the same
     handler request stream under the reference and the threaded-code
     engine, plus a full divergence check (any mismatch in stop
     reason, step count or PMU counters fails the harness — this is
     what the bench-smoke runtest alias relies on). *)
  printf "\nengine throughput (postmark PV handler stream):\n";
  let n_reqs = 250 in
  let reqs =
    let stream = Stream.create profile Profile.PV (Rng.create 17) in
    List.init n_reqs (fun _ -> Stream.next_request stream)
  in
  let fingerprints engine =
    let host = Hypervisor.create ~seed:7 ~engine () in
    List.map
      (fun req ->
        let r = Hypervisor.handle host req in
        (r.Mcpu.stop, r.Mcpu.steps, r.Mcpu.final_pmu))
      reqs
  in
  let identical = fingerprints Mcpu.Ref = fingerprints Mcpu.Fast in
  let throughput engine =
    let host = Hypervisor.create ~seed:7 ~engine () in
    (* Warm pass: populates the handler memo (and the compile cache),
       so the timed loop measures execution, not synthesis. *)
    List.iter (fun req -> ignore (Hypervisor.handle host req)) reqs;
    (* Steps per second of handler *execution*: prepare/retire (the
       engine-independent request staging and scheduler sync) run
       outside the timed window, so the metric isolates the
       interpreter.  A handler run is tens of microseconds, so the two
       clock reads bracketing it are noise. *)
    let steps = ref 0 in
    let exec_time = ref 0.0 in
    while !exec_time < 0.4 do
      List.iter
        (fun req ->
          Hypervisor.prepare host req;
          let t0 = Unix.gettimeofday () in
          let r = Hypervisor.execute host req in
          exec_time := !exec_time +. (Unix.gettimeofday () -. t0);
          steps := !steps + r.Mcpu.steps;
          Hypervisor.retire host req)
        reqs
    done;
    float_of_int !steps /. !exec_time
  in
  let ref_sps = throughput Mcpu.Ref in
  let fast_sps = throughput Mcpu.Fast in
  printf "  ref   %11.0f steps/s\n" ref_sps;
  printf "  fast  %11.0f steps/s   speedup %.2fx\n" fast_sps
    (fast_sps /. Float.max 1e-9 ref_sps);
  printf "  ref/fast results identical over %d requests: %b\n" n_reqs identical;
  micro_engine_result := Some (ref_sps, fast_sps, identical);
  if not identical then begin
    Printf.eprintf
      "FATAL: ref and fast engines diverged on the handler stream\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fault classes: coverage under the widened fault model                *)
(* ------------------------------------------------------------------ *)

let fault_class_rows :
    (string * Xentry_faultinject.Report.summary) list ref =
  ref []

let classes () =
  print (R.section "Fault classes: per-class coverage (widened model)");
  let injections = scaled 6_000 in
  let all = Array.to_list Fault.all_classes in
  printf "[classes] %d injections over %s (jobs %d)...\n%!" injections
    (Fault.classes_to_string all) !jobs;
  let t0 = Unix.gettimeofday () in
  let records =
    Campaign.execute
      (Campaign.Config.make ~jobs:!jobs ~benchmark:Profile.Postmark
         ~injections ~seed:4242 ~fault_classes:all ())
  in
  record_phase "class-campaign" (Unix.gettimeofday () -. t0) injections;
  let per_class = Report.by_class records in
  print
    (R.table
       ~header:
         [ "class"; "injections"; "manifested"; "coverage"; "hw"; "sw";
           "vmt"; "ras" ]
       ~rows:
         (List.map
            (fun (c, s) ->
              let t = s.Report.techniques in
              [
                Fault.cls_name c;
                string_of_int s.Report.total_injections;
                string_of_int s.Report.manifested;
                R.percent (pct_of_fraction s.Report.coverage);
                string_of_int t.Report.hw_exception;
                string_of_int t.Report.sw_assertion;
                string_of_int t.Report.vm_transition;
                string_of_int t.Report.ras_report;
              ])
            per_class));
  let ras_only =
    List.fold_left
      (fun acc (_, s) -> acc + s.Report.techniques.Report.ras_report)
      0 per_class
  in
  printf
    "RAS error records caught %d manifested faults the synchronous\n\
     channels (exceptions, assertions, VM-transition tree) missed.\n"
    ras_only;
  fault_class_rows := List.map (fun (c, s) -> (Fault.cls_name c, s)) per_class

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3", fig3);
    ("table1", table1);
    ("accuracy", accuracy);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("table2", table2);
    ("fig11", fig11);
    ("ablation", ablation);
    ("modes", modes);
    ("exposure", exposure);
    ("recovery", recovery);
    ("hardening", hardening);
    ("speedup", speedup);
    ("resume", resume);
    ("campaign", campaign);
    ("serve", serve);
    ("recover", recover);
    ("cluster", cluster);
    ("classes", classes);
    ("micro", micro);
  ]

(* --- machine-readable timing output ------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path =
  match open_out path with
  | exception Sys_error msg ->
      Printf.eprintf "[json] cannot write %s: %s\n%!" path msg;
      exit 1
  | oc ->
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"scale\": %g,\n" scale;
  out "  \"jobs\": %d,\n" !jobs;
  out "  \"engine\": \"%s\",\n" (Mcpu.engine_name (Mcpu.default_engine ()));
  out "  \"campaign_sizes\": {\n";
  out "    \"train_injections\": %d,\n" (scaled 23_400);
  out "    \"test_injections\": %d,\n" (scaled 17_700);
  out "    \"coverage_injections\": %d,\n" (scaled (30_000 / 6) * 6);
  out "    \"shard_size\": %d\n" Campaign.shard_size;
  out "  },\n";
  let entries fmt1 items =
    List.iteri
      (fun i item ->
        fmt1 item;
        if i < List.length items - 1 then out ",\n" else out "\n")
      items
  in
  out "  \"phases\": [\n";
  entries
    (fun (name, seconds, injections) ->
      out "    {\"name\": \"%s\", \"seconds\": %.6f, \"injections\": %d}"
        (json_escape name) seconds injections)
    (List.rev !phase_timings);
  out "  ],\n";
  (match !speedup_result with
  | Some (injections, par_jobs, serial_s, parallel_s, identical) ->
      out
        "  \"speedup\": {\"injections\": %d, \"jobs\": %d, \"serial_seconds\": \
         %.6f, \"parallel_seconds\": %.6f, \"speedup\": %.3f, \"identical\": \
         %b},\n"
        injections par_jobs serial_s parallel_s
        (serial_s /. Float.max 1e-9 parallel_s)
        identical
  | None -> ());
  (match !campaign_bench_result with
  | Some cb ->
      let eff s = float_of_int cb.cb_total /. Float.max 1e-9 s in
      out
        "  \"campaign\": {\"injections\": %d, \"legacy_seconds\": %.6f, \
         \"exhaustive_seconds\": %.6f, \"cold_seconds\": %.6f, \
         \"warm_seconds\": %.6f, \"pruned_fraction\": %.4f, \
         \"collapsed_fraction\": %.4f, \"fast_forward_fraction\": %.4f, \
         \"effective_injections_per_sec\": %.1f, \
         \"effective_injections_per_sec_exhaustive\": %.1f, \
         \"effective_injections_per_sec_legacy\": %.1f, \"speedup\": %.3f, \
         \"speedup_vs_exhaustive\": %.3f, \"identical\": %b},\n"
        cb.cb_total cb.cb_legacy_s cb.cb_exhaustive_s cb.cb_cold_s cb.cb_warm_s
        cb.cb_pruned_fraction cb.cb_collapsed_fraction
        cb.cb_fast_forward_fraction (eff cb.cb_warm_s) (eff cb.cb_exhaustive_s)
        (eff cb.cb_legacy_s)
        (cb.cb_legacy_s /. Float.max 1e-9 cb.cb_warm_s)
        (cb.cb_exhaustive_s /. Float.max 1e-9 cb.cb_warm_s)
        cb.cb_identical
  | None -> ());
  (match !cluster_bench_result with
  | Some ck ->
      let eff s = float_of_int ck.ck_injections /. Float.max 1e-9 s in
      let base_s = (List.hd ck.ck_legs).cls in
      out
        "  \"cluster\": {\"injections\": %d, \"shards\": %d, \
         \"total_domains\": %d,\n"
        ck.ck_injections ck.ck_shards ck.ck_domains;
      out "    \"legs\": [\n";
      entries
        (fun l ->
          out
            "      {\"workers\": %d, \"jobs_per_worker\": %d, \"seconds\": \
             %.6f, \"effective_injections_per_sec\": %.1f, \"identical\": %b}"
            l.clw l.clj l.cls (eff l.cls) l.cli)
        ck.ck_legs;
      out "    ],\n";
      (match List.find_opt (fun l -> l.clw = 4) ck.ck_legs with
      | Some l4 ->
          out "    \"speedup_workers4_vs_1\": %.3f,\n"
            (base_s /. Float.max 1e-9 l4.cls)
      | None -> ());
      (match ck.ck_kill with
      | Some (s, identical, resume_identical) ->
          out
            "    \"kill\": {\"seconds\": %.6f, \"identical\": %b, \
             \"resume_identical\": %b},\n"
            s identical resume_identical
      | None -> ());
      (match ck.ck_serve with
      | Some (workers, s) ->
          out
            "    \"serve\": {\"workers\": %d, \"throughput_rps\": %.1f, \
             \"completed\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f, \
             \"workers_lost\": %d, \"streams_remapped\": %d, \
             \"shed_worker_lost\": %d},\n"
            workers s.Front.throughput_rps s.Front.completed
            (Front.latency_quantile s 0.50)
            (Front.latency_quantile s 0.99)
            s.Front.workers_lost s.Front.streams_remapped
            s.Front.shed_worker_lost
      | None -> ());
      out "    \"identical\": %b},\n"
        (List.for_all (fun l -> l.cli) ck.ck_legs)
  | None -> ());
  (match List.rev !serve_results with
  | [] -> ()
  | results ->
      out "  \"serve\": [\n";
      entries
        (fun (name, rate, s) ->
          out
            "    {\"scenario\": \"%s\", \"offered_rps\": %.1f, \
             \"throughput_rps\": %.1f, \"completed\": %d, \"detected\": %d, \
             \"shed_fraction\": %.4f, \"shed_queue_full\": %d, \
             \"shed_deadline\": %d, \"shed_draining\": %d, \"p50_us\": %.1f, \
             \"p99_us\": %.1f, \"deepest_level\": \"%s\", \"final_level\": \
             \"%s\", \"peak_occupancy\": %.3f, \"injected\": %d, \
             \"recoveries\": %d, \"recovery_p50_us\": %.1f, \
             \"recovery_p99_us\": %.1f, \"availability\": %.6f}"
            (json_escape name) rate s.Serve.throughput_rps s.Serve.completed
            s.Serve.detected (Serve.shed_fraction s) s.Serve.shed_queue_full
            s.Serve.shed_deadline s.Serve.shed_draining
            (Serve.latency_quantile s 0.50)
            (Serve.latency_quantile s 0.99)
            (json_escape s.Serve.rung_names.(s.Serve.deepest_rung))
            (json_escape s.Serve.rung_names.(s.Serve.final_rung))
            s.Serve.peak_occupancy s.Serve.injected s.Serve.recoveries
            (Serve.recovery_quantile s 0.50)
            (Serve.recovery_quantile s 0.99)
            s.Serve.availability)
        results;
      out "  ],\n");
  (match !recover_bench_result with
  | Some r ->
      out
        "  \"recover\": {\"injections\": %d, \"detected\": %d, \
         \"undetected_manifested\": %d, \"masked\": %d, \
         \"micro_work_recovered\": %d, \"micro_work_lost\": %d, \
         \"micro_state_lost\": %d, \"restart_work_lost\": %d, \
         \"restart_state_lost\": %d, \"mttf_improvement\": %s, \
         \"image_bytes\": %d, \"checkpoint_bytes\": %d, \"reboot_ns_mean\": \
         %.1f, \"reboot_ns_p99\": %.1f,\n"
        r.RecCampaign.injections r.RecCampaign.detected
        r.RecCampaign.undetected_manifested r.RecCampaign.masked
        r.RecCampaign.micro_work_recovered r.RecCampaign.micro_work_lost
        r.RecCampaign.micro_state_lost r.RecCampaign.restart_work_lost
        r.RecCampaign.restart_state_lost
        (if r.RecCampaign.mttf_improvement = Float.infinity then "null"
         else Printf.sprintf "%.3f" r.RecCampaign.mttf_improvement)
        r.RecCampaign.image_bytes r.RecCampaign.checkpoint_bytes
        r.RecCampaign.reboot_ns_mean r.RecCampaign.reboot_ns_p99;
      out "    \"classes\": [\n";
      entries
        (fun (c : RecCampaign.class_stats) ->
          out
            "      {\"class\": \"%s\", \"faults\": %d, \"recovered_exactly\": \
             %d, \"mismatches\": %d, \"carryover\": %d}"
            (json_escape (RecCampaign.class_name c.RecCampaign.cls))
            c.RecCampaign.faults c.RecCampaign.recovered_exactly
            c.RecCampaign.mismatches c.RecCampaign.carryover)
        r.RecCampaign.classes;
      out "    ],\n";
      out "    \"identical\": %b},\n"
        (r.RecCampaign.micro_state_lost = 0
        && r.RecCampaign.micro_work_recovered = r.RecCampaign.detected)
  | None -> ());
  (match !micro_engine_result with
  | Some (ref_sps, fast_sps, identical) ->
      out
        "  \"micro\": {\"ref_steps_per_sec\": %.1f, \"fast_steps_per_sec\": \
         %.1f, \"engine_speedup\": %.3f, \"identical\": %b},\n"
        ref_sps fast_sps
        (fast_sps /. Float.max 1e-9 ref_sps)
        identical
  | None -> ());
  (match !fault_class_rows with
  | [] -> ()
  | rows ->
      out "  \"fault_classes\": [\n";
      entries
        (fun (name, (s : Report.summary)) ->
          let t = s.Report.techniques in
          out
            "    {\"class\": \"%s\", \"injections\": %d, \"activated\": %d, \
             \"manifested\": %d, \"coverage\": %.4f, \"hw_exception\": %d, \
             \"sw_assertion\": %d, \"vm_transition\": %d, \"ras_report\": %d, \
             \"undetected\": %d}"
            (json_escape name) s.Report.total_injections s.Report.activated
            s.Report.manifested s.Report.coverage t.Report.hw_exception
            t.Report.sw_assertion t.Report.vm_transition t.Report.ras_report
            t.Report.undetected)
        rows;
      out "  ],\n");
  if Telemetry.enabled () then out "  \"telemetry\": %s,\n" (Telemetry.to_json ());
  out "  \"experiments\": [\n";
  entries
    (fun (name, seconds) ->
      out "    {\"name\": \"%s\", \"seconds\": %.6f}" (json_escape name) seconds)
    (List.rev !experiment_timings);
  out "  ]\n";
  out "}\n";
  close_out oc;
  printf "[json] wrote %s\n" path

(* --- argument parsing --------------------------------------------- *)

let usage () =
  printf
    "usage: main.exe [-j N] [--engine ref|fast] [--json FILE] \
     [--telemetry FILE] [EXPERIMENT...]\navailable: %s\n"
    (String.concat ", " (List.map fst experiments))

let parse_args () =
  let rec go acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some 0 -> jobs := Pool.recommended_jobs (); go acc rest
        | Some j when j > 0 -> jobs := j; go acc rest
        | _ ->
            printf "invalid job count %S\n" v;
            usage ();
            exit 2)
    | "--engine" :: v :: rest -> (
        match Mcpu.engine_of_string v with
        | Some e -> Mcpu.set_default_engine e; go acc rest
        | None ->
            printf "invalid engine %S (expected ref or fast)\n" v;
            usage ();
            exit 2)
    | "--json" :: path :: rest -> json_path := Some path; go acc rest
    | "--telemetry" :: path :: rest -> telemetry_path := Some path; go acc rest
    | ("-h" | "--help") :: _ -> usage (); exit 0
    | ("-j" | "--jobs" | "--engine" | "--json" | "--telemetry") :: [] ->
        printf "missing value for final option\n";
        usage ();
        exit 2
    | name :: rest -> go (name :: acc) rest
  in
  go [] (List.tl (Array.to_list Sys.argv))

(* Cluster-worker re-exec entry: the cluster experiment spawns this
   binary back as its worker processes (see [cluster_worker_argv]). *)
let () =
  match Sys.argv with
  | [| _; "--cluster-worker"; sock; jobs |] ->
      Xentry_cluster.Worker.run ~jobs:(int_of_string jobs)
        ~connect:(CP.Unix_sock sock) ();
      exit 0
  | _ -> ()

let () =
  let requested = parse_args () in
  Option.iter (fun _ -> Telemetry.enable ()) !telemetry_path;
  let requested = if requested = [] then [ "all" ] else requested in
  let to_run =
    if List.mem "all" requested then List.map fst experiments else requested
  in
  printf
    "Xentry benchmark harness (scale %.2f, jobs %d, engine %s; set \
     XENTRY_SCALE / -j / --engine to adjust)\n"
    scale !jobs
    (Mcpu.engine_name (Mcpu.default_engine ()));
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          experiment_timings :=
            (name, Unix.gettimeofday () -. t0) :: !experiment_timings
      | None ->
          printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments)))
    to_run;
  Option.iter write_json !json_path;
  Option.iter
    (fun path ->
      Telemetry.export_file path;
      printf "[telemetry] wrote %s\n" path)
    !telemetry_path
