(* A fault-injection campaign in miniature: the paper's Fig 8 / Fig 10
   pipeline on one benchmark, with per-technique attribution, latency
   statistics and the undetected-fault breakdown.

   Run with:  dune exec examples/fault_injection_campaign.exe [-- N]
   where N is the number of injections (default 2,000). *)

open Xentry_util
open Xentry_core
open Xentry_faultinject

let () =
  let injections =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000
  in
  Printf.printf "training a detector, then injecting %d single-bit faults into\n\
                 hypervisor executions under the canneal workload...\n\n%!"
    injections;
  let train =
    Training.collect ~seed:11
      ~benchmarks:[ Xentry_workload.Profile.Canneal; Xentry_workload.Profile.Postmark ]
      ~mode:Xentry_workload.Profile.PV ~injections_per_benchmark:1200
      ~fault_free_per_benchmark:400 ()
  in
  let test =
    Training.collect ~seed:12
      ~benchmarks:[ Xentry_workload.Profile.Canneal ]
      ~mode:Xentry_workload.Profile.PV ~injections_per_benchmark:400
      ~fault_free_per_benchmark:100 ()
  in
  let detector = Training.detector (Training.train_and_evaluate ~train ~test ()) in
  let records =
    Campaign.execute
      (Campaign.Config.make ~detector
         ~benchmark:Xentry_workload.Profile.Canneal ~injections ~seed:3 ())
  in
  let s = Report.summarize records in

  Printf.printf "injections: %d  activated: %d  manifested: %d\n"
    s.Report.total_injections s.Report.activated s.Report.manifested;
  Printf.printf "coverage of manifested faults: %.1f%%\n\n"
    (100.0 *. s.Report.coverage);

  print_endline "detection technique breakdown (Fig 8 shape):";
  List.iter
    (fun (name, pct) -> Printf.printf "  %-26s %5.1f%%\n" name pct)
    (Report.technique_percentages s);

  print_endline "\nlong-latency errors by consequence (Fig 9 shape):";
  List.iter
    (fun (kind, detected, undetected) ->
      Printf.printf "  %-16s %3d detected / %3d total\n" (Outcome.long_name kind)
        detected (detected + undetected))
    s.Report.long_latency_by_consequence;

  print_endline "\ndetection latency (Fig 10 shape):";
  List.iter
    (fun (technique, latencies) ->
      if Array.length latencies > 0 then begin
        let fl = Array.map float_of_int latencies in
        Printf.printf "  %-26s n=%-5d median=%-7.0f p95=%.0f instructions\n"
          (Framework.technique_name technique)
          (Array.length latencies) (Stats.median fl) (Stats.quantile fl 0.95)
      end)
    s.Report.latencies_by_technique;

  print_endline "\nundetected faults (Table II shape):";
  List.iter
    (fun (name, pct) -> Printf.printf "  %-14s %5.1f%%\n" name pct)
    (Report.undetected_percentages s)
