(* Quickstart: boot a simulated virtualized host, run a slice of a
   benchmark's VM-exit stream through the hypervisor with Xentry
   watching, and print the verdict for each hypervisor execution.

   Run with:  dune exec examples/quickstart.exe *)

open Xentry_vmm
open Xentry_workload
open Xentry_core
open Xentry_faultinject

let () =
  (* 1. A host: Dom0 + two para-virtualized DomUs, as in the paper's
     simulated testbed. *)
  let host = Hypervisor.create ~seed:42 () in
  Printf.printf "host up: %d domains, %d exit reasons, %d handler instructions\n"
    (Array.length (Hypervisor.domains host))
    Exit_reason.count
    (Handlers.static_instruction_count ());

  (* 2. A quick Xentry detector.  (Real deployments train on tens of
     thousands of injections — see train_detector.ml; a small corpus
     is enough to demonstrate the flow.) *)
  print_endline "training a small VM-transition detector...";
  let train =
    Training.collect ~seed:1 ~benchmarks:[ Profile.Postmark ]
      ~mode:Profile.PV ~injections_per_benchmark:800
      ~fault_free_per_benchmark:300 ()
  in
  let test =
    Training.collect ~seed:2 ~benchmarks:[ Profile.Postmark ]
      ~mode:Profile.PV ~injections_per_benchmark:300
      ~fault_free_per_benchmark:100 ()
  in
  let trained = Training.train_and_evaluate ~train ~test () in
  let detector = Training.detector trained in
  Printf.printf "detector ready: random tree, %.1f%% accuracy on held-out runs\n"
    (100.0 *. Xentry_mlearn.Metrics.accuracy trained.Training.random_tree_eval);

  (* 3. Drive one slice of the postmark workload and let Xentry watch
     every VM transition.  One Pipeline.Config names the whole setup;
     Pipeline.run prepares, executes, classifies and retires. *)
  let pipeline = Pipeline.Config.make ~detector () in
  let stream =
    Stream.create (Profile.get Profile.Postmark) Profile.PV
      (Xentry_util.Rng.create 7)
  in
  print_endline "\nrunning 20 hypervisor executions under full detection:";
  for i = 1 to 20 do
    let req = Stream.next_request stream in
    let outcome = Pipeline.run pipeline ~host ~retire:true req in
    Printf.printf "  exit %2d  %-28s %5d instrs  %s\n" i
      (Exit_reason.name req.Request.reason)
      outcome.Pipeline.result.Xentry_machine.Cpu.steps
      (Format.asprintf "%a" Pipeline.pp_verdict outcome.Pipeline.verdict)
  done;

  (* 4. Now flip one architectural register bit mid-execution and
     watch the framework catch it: bit 41 of RSI while a console_io
     hypercall is copying from the guest buffer turns the source
     pointer wild — the next load page-faults in host mode. *)
  print_endline "\ninjecting a fault (bit 41 of RSI at instruction 60, mid-copy):";
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Console_io)
      ~args:[ 0L; 0L; 64L ] ~guest:[]
  in
  let inject =
    Xentry_machine.Cpu.reg_injection
      (Xentry_isa.Reg.Gpr Xentry_isa.Reg.RSI)
      ~bit:41 ~step:60
  in
  let outcome = Pipeline.run pipeline ~host ~inject req in
  Printf.printf "  %-28s stopped: %s\n"
    (Exit_reason.name req.Request.reason)
    (Format.asprintf "%a" Xentry_machine.Cpu.pp_stop
       outcome.Pipeline.result.Xentry_machine.Cpu.stop);
  Printf.printf "  Xentry verdict: %s\n"
    (Format.asprintf "%a" Pipeline.pp_verdict outcome.Pipeline.verdict)
