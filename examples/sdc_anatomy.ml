(* Anatomy of a silent data corruption — the paper's §II example.

   A guest executes cpuid; the privileged instruction traps (#GP) and
   the hypervisor emulates it, writing the results into the guest's
   VCPU save area.  A soft error striking the leaf register inside the
   hypervisor does not crash anything: the emulation completes, the
   guest resumes, and only later does the wrong eax value bite — a
   long-latency error.  This example walks that propagation end to
   end, then contrasts it with a control-flow corruption (the paper's
   Fig 5a: a flipped bit in a copy count) that VM-transition detection
   can catch before the guest resumes.

   Run with:  dune exec examples/sdc_anatomy.exe *)

open Xentry_isa
open Xentry_machine
open Xentry_vmm
open Xentry_core
open Xentry_faultinject

let show_stop result =
  Format.asprintf "%a" Cpu.pp_stop result.Cpu.stop

let () =
  let host = Hypervisor.create ~seed:5 () in
  let dom = Hypervisor.current_domain host in

  (* --- Act 1: the cpuid emulation path, fault-free ---------------- *)
  print_endline "=== Act 1: fault-free cpuid emulation ===";
  let leaf = 4L in
  let req =
    Request.make
      ~reason:(Exit_reason.Exception Hw_exception.GP)
      ~args:[ 0L (* emulate cpuid *) ]
      ~guest:[ leaf ]
  in
  Hypervisor.prepare host req;
  let golden_host = Hypervisor.clone host in
  let golden = Hypervisor.execute golden_host req in
  let golden_rax = Domain.get_user_reg
      (Hypervisor.domains golden_host).(dom.Domain.id) ~vcpu:0 Reg.RAX in
  Printf.printf "guest executes cpuid(leaf=%Ld); hypervisor emulates in %d instructions\n"
    leaf golden.Cpu.steps;
  Printf.printf "guest eax on resume: %016Lx\n\n" golden_rax;

  (* --- Act 2: a soft error in the leaf register ------------------- *)
  print_endline "=== Act 2: bit 17 of RAX flips just before the emulated cpuid ===";
  (* The leaf is vulnerable between its reload from the save area and
     the cpuid itself — scan the emulation window for the step where
     the flip actually poisons the result. *)
  let try_step step =
    let h = Hypervisor.clone host in
    let inject = Cpu.reg_injection (Reg.Gpr Reg.RAX) ~bit:17 ~step in
    let r = Hypervisor.execute h ~inject req in
    (h, r)
  in
  let rec scan step =
    if step > golden.Cpu.steps then (fst (try_step 3), snd (try_step 3), 3)
    else
      let h, r = try_step step in
      let rax =
        Domain.get_user_reg (Hypervisor.domains h).(dom.Domain.id) ~vcpu:0 Reg.RAX
      in
      if r.Cpu.stop = Cpu.Vm_entry && rax <> golden_rax then (h, r, step)
      else scan (step + 1)
  in
  let faulted_host, faulted, hit_step = scan 1 in
  Printf.printf "vulnerable window found at dynamic instruction %d\n" hit_step;
  Printf.printf "faulted run stops with: %s (no crash, no assertion)\n"
    (show_stop faulted);
  let faulted_rax = Domain.get_user_reg
      (Hypervisor.domains faulted_host).(dom.Domain.id) ~vcpu:0 Reg.RAX in
  Printf.printf "guest eax on resume:  %016Lx   (golden was %016Lx)\n"
    faulted_rax golden_rax;
  let diffs = Classify.diffs ~golden:golden_host ~faulted:faulted_host in
  let consequence =
    Classify.consequence ~current_dom:dom.Domain.id
      ~faulted_stop:faulted.Cpu.stop diffs
  in
  Printf.printf "golden-run comparison says: %s\n"
    (Outcome.consequence_name consequence);
  Printf.printf "PMU signature golden=(%s) faulted=(%s)%s\n\n"
    (Format.asprintf "%a" Pmu.pp_snapshot golden.Cpu.final_pmu)
    (Format.asprintf "%a" Pmu.pp_snapshot faulted.Cpu.final_pmu)
    (if golden.Cpu.final_pmu = faulted.Cpu.final_pmu then
       "  <- identical: pure data corruption, invisible to any signature"
     else "");

  (* --- Act 3: a control-flow corruption VM-transition detection sees *)
  print_endline "=== Act 3: the same campaign, but the fault hits a copy count (Fig 5a) ===";
  let copy_req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Console_io)
      ~args:[ 0L; 0L; 32L (* copy 32 words *) ]
      ~guest:[]
  in
  Hypervisor.prepare host copy_req;
  let g2 = Hypervisor.clone host in
  let golden_trace = Trace.create ~capacity:4096 () in
  let golden2 =
    Hypervisor.execute g2 ~on_step:(Trace.hook golden_trace) copy_req
  in
  let f2 = Hypervisor.clone host in
  (* Flip a low bit of RCX while the rep mov is running: extra dynamic
     instructions, exactly Fig 5a. *)
  let inject2 = Cpu.reg_injection (Reg.Gpr Reg.RCX) ~bit:6 ~step:40 in
  let faulted_trace = Trace.create ~capacity:4096 () in
  let faulted2 =
    Hypervisor.execute f2 ~inject:inject2 ~on_step:(Trace.hook faulted_trace)
      copy_req
  in
  Printf.printf "golden signature:  %s\n"
    (Format.asprintf "%a" Pmu.pp_snapshot golden2.Cpu.final_pmu);
  Printf.printf "faulted signature: %s\n"
    (Format.asprintf "%a" Pmu.pp_snapshot faulted2.Cpu.final_pmu);
  (* The flight recorder shows where the instruction streams part ways,
     rendering the paper's Fig 5a side-by-side traces. *)
  (match Trace.diff_point golden_trace faulted_trace with
  | Some step ->
      Printf.printf
        "instruction traces diverge at dynamic step %d (golden run: %d \
         instructions, faulted: %d)\n"
        step (Trace.total golden_trace) (Trace.total faulted_trace)
  | None ->
      (* Extra rep iterations keep the same static instruction: the
         divergence is in trace LENGTH, as in Fig 5a's 'extra code'. *)
      Printf.printf
        "same instruction sequence, but the faulted trace runs %d extra \
         dynamic instructions (Fig 5a's 'extra code' case)\n"
        (Trace.total faulted_trace - Trace.total golden_trace));

  print_endline "\ntraining a detector to tell these apart...";
  let train =
    Training.collect ~seed:21 ~benchmarks:[ Xentry_workload.Profile.Postmark ]
      ~mode:Xentry_workload.Profile.PV ~injections_per_benchmark:5000
      ~fault_free_per_benchmark:1500 ()
  in
  let test =
    Training.collect ~seed:22 ~benchmarks:[ Xentry_workload.Profile.Postmark ]
      ~mode:Xentry_workload.Profile.PV ~injections_per_benchmark:300
      ~fault_free_per_benchmark:100 ()
  in
  let detector = Training.detector (Training.train_and_evaluate ~train ~test ()) in
  let pipeline = Pipeline.Config.make ~detector () in
  let check label req result =
    let verdict = Pipeline.verdict pipeline ~reason:req.Request.reason result in
    Printf.printf "  %-34s -> %s\n" label
      (Format.asprintf "%a" Pipeline.pp_verdict verdict)
  in
  check "golden copy execution" copy_req golden2;
  check "corrupted-count copy execution" copy_req faulted2;
  check "cpuid SDC from Act 2" req faulted;
  print_endline
    "\nThe corrupted count perturbs the dynamic signature and is caught at\n\
     VM entry.  The cpuid corruption has an identical signature and slips\n\
     through: the guest later consumes the wrong eax and most likely\n\
     crashes (exactly the paper's SII prediction).  Such pure data errors\n\
     are the residual classes of Table II and motivate the paper's\n\
     future-work directions (selective value duplication)."
