(* The §III-B training pipeline in miniature: collect labelled VM-entry
   signatures from fault injections and fault-free runs, fit both tree
   algorithms, compare their accuracy (the paper reports 96.1% for the
   decision tree vs 98.6% for the random tree), and show the learned
   rules.

   Run with:  dune exec examples/train_detector.exe *)

open Xentry_mlearn
open Xentry_faultinject

let () =
  let benchmarks =
    [ Xentry_workload.Profile.Mcf; Xentry_workload.Profile.Freqmine;
      Xentry_workload.Profile.Postmark ]
  in
  print_endline "collecting training corpus (fault injections + fault-free runs)...";
  let train =
    Training.collect ~seed:2014 ~benchmarks ~mode:Xentry_workload.Profile.PV
      ~injections_per_benchmark:1500 ~fault_free_per_benchmark:400 ()
  in
  let test =
    Training.collect ~seed:9 ~benchmarks ~mode:Xentry_workload.Profile.PV
      ~injections_per_benchmark:700 ~fault_free_per_benchmark:200 ()
  in
  Printf.printf "training corpus: %d samples (%d correct, %d incorrect)\n"
    (Dataset.length train.Training.dataset)
    train.Training.correct train.Training.incorrect;
  Printf.printf "testing corpus:  %d samples (%d correct, %d incorrect)\n\n"
    (Dataset.length test.Training.dataset)
    test.Training.correct test.Training.incorrect;

  let trained = Training.train_and_evaluate ~train ~test () in
  let show name tree eval =
    Printf.printf
      "%-13s accuracy %.1f%%  recall %.1f%%  FP rate %.2f%%  depth %d  %d nodes\n"
      name
      (100.0 *. Metrics.accuracy eval)
      (100.0 *. Metrics.recall eval)
      (100.0 *. Metrics.false_positive_rate eval)
      (Tree.depth tree) (Tree.node_count tree)
  in
  show "decision tree" trained.Training.decision_tree
    trained.Training.decision_tree_eval;
  show "random tree" trained.Training.random_tree
    trained.Training.random_tree_eval;

  print_endline "\nfirst rules of the deployed (random) tree:";
  List.iteri
    (fun i rule -> if i < 8 then Printf.printf "  %s\n" rule)
    (Tree.rules trained.Training.random_tree);

  (* The deployed detector classifies a signature with a handful of
     integer comparisons — why the paper considers it cheap enough to
     run at every VM entry. *)
  let det = Training.detector trained in
  Printf.printf "\nper-VM-entry worst case: %d integer comparisons (detector v%d)\n"
    (Xentry_core.Detector.worst_case_comparisons det)
    (Xentry_core.Detector.version det);

  (* Persist the detector as a versioned artifact and reload it — the
     deployment path (`xentry train --save` / `xentry inject
     --detector`).  The reloaded classifier is the same tree bit for
     bit, so spot-checking a few test signatures through both must
     agree verdict for verdict. *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "xentry-example-detector.xart" in
  Xentry_store.Artifact.save Xentry_store.Codec.versioned_detector path det;
  Printf.printf "\nsaved detector artifact: %s\n" path;
  (match Xentry_store.Artifact.load Xentry_store.Codec.versioned_detector path with
  | Error e ->
      Printf.printf "reload failed: %s\n" (Xentry_store.Artifact.error_message e)
  | Ok reloaded ->
      let samples = Dataset.samples test.Training.dataset in
      let agree = ref true in
      Array.iteri
        (fun i s ->
          let live, _ =
            Xentry_core.Detector.classify_features det s.Dataset.features
          in
          let saved, _ =
            Xentry_core.Detector.classify_features reloaded s.Dataset.features
          in
          if live <> saved then agree := false;
          if i < 5 then
            let show v =
              Format.asprintf "%a" Xentry_core.Transition_detector.pp_verdict v
            in
            Printf.printf "  signature %d: live=%s saved=%s\n" i (show live)
              (show saved))
        samples;
      Printf.printf "reloaded detector agrees on all %d test signatures: %b\n"
        (Array.length samples) !agree);
  Sys.remove path
