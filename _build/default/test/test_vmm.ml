(* Tests for Xentry_vmm: exit-reason taxonomy, hypercall table, layout,
   domains, event channels, scheduler, timekeeping, and — most
   importantly — that every synthesized handler executes fault-free
   from VM exit to VM entry with correct guest-visible semantics. *)

open Xentry_machine
open Xentry_vmm

let stop_testable = Alcotest.testable Cpu.pp_stop ( = )

(* --- Exit reasons --------------------------------------------------------- *)

let test_exit_reason_count () =
  (* 16 IRQs + 10 APIC + softirq + tasklet + 19 exceptions + 38
     hypercalls = 85, as inventoried from the paper's §IV. *)
  Alcotest.(check int) "85 reasons" 85 Exit_reason.count

let test_exit_reason_id_roundtrip () =
  Array.iteri
    (fun i reason ->
      Alcotest.(check int) "dense id" i (Exit_reason.to_id reason);
      match Exit_reason.of_id i with
      | Some r ->
          Alcotest.(check string) "roundtrip" (Exit_reason.name reason)
            (Exit_reason.name r)
      | None -> Alcotest.fail "of_id failed")
    Exit_reason.all

let test_exit_reason_names_unique () =
  let names = Array.to_list (Array.map Exit_reason.name Exit_reason.all) in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_exit_reason_categories () =
  let count_cat c =
    Array.to_list Exit_reason.all
    |> List.filter (fun r -> Exit_reason.category r = c)
    |> List.length
  in
  Alcotest.(check int) "irq" 16 (count_cat "irq");
  Alcotest.(check int) "apic" 10 (count_cat "apic");
  Alcotest.(check int) "exception" 19 (count_cat "exception");
  Alcotest.(check int) "hypercall" 38 (count_cat "hypercall")

(* --- Hypercalls ------------------------------------------------------------ *)

let test_hypercall_count () =
  Alcotest.(check int) "38 hypercalls" 38 Hypercall.count

let test_hypercall_number_roundtrip () =
  Array.iter
    (fun h ->
      match Hypercall.of_number (Hypercall.number h) with
      | Some h' ->
          Alcotest.(check string) "roundtrip" (Hypercall.name h)
            (Hypercall.name h')
      | None -> Alcotest.fail "of_number failed")
    Hypercall.all

let test_hypercall_known_numbers () =
  (* Spot-check positions against the real Xen 4.1 hypercall table. *)
  Alcotest.(check int) "set_trap_table" 0 (Hypercall.number Hypercall.Set_trap_table);
  Alcotest.(check int) "mmu_update" 1 (Hypercall.number Hypercall.Mmu_update);
  Alcotest.(check int) "sched_op" 28 (Hypercall.number Hypercall.Sched_op);
  Alcotest.(check int) "event_channel_op" 31
    (Hypercall.number Hypercall.Event_channel_op)

(* --- Layout ------------------------------------------------------------------ *)

let test_layout_domains_disjoint () =
  for d = 0 to Layout.max_domains - 2 do
    let a = Layout.dom_base d and b = Layout.dom_base (d + 1) in
    Alcotest.(check bool) "64KiB blocks disjoint" true
      (Int64.sub b a >= 0x10000L)
  done

let test_layout_request_args_bounds () =
  Alcotest.check_raises "arg 8 rejected" (Invalid_argument "Layout.request_arg")
    (fun () -> ignore (Layout.request_arg 8))

let test_layout_scale_tsc_matches_vtime () =
  List.iter
    (fun tsc ->
      Alcotest.(check int64) "scale agreement"
        (Layout.scale_tsc tsc)
        (Vtime.expected_system_time ~tsc))
    [ 0L; 1L; 1_000_000L; 0x1234_5678_9ABCL ]

let test_layout_map_host_validation () =
  let mem = Memory.create () in
  Alcotest.check_raises "too many domains"
    (Invalid_argument "Layout.map_host: domain count out of range") (fun () ->
      Layout.map_host mem ~cpus:1 ~domains:99)

(* --- Domain ------------------------------------------------------------------ *)

let with_host f =
  let host = Hypervisor.create ~seed:7 () in
  f host

let test_domain_user_regs_roundtrip () =
  with_host (fun host ->
      let d = (Hypervisor.domains host).(1) in
      Domain.set_user_reg d ~vcpu:0 Xentry_isa.Reg.RAX 0xABCDL;
      Alcotest.(check int64) "roundtrip" 0xABCDL
        (Domain.get_user_reg d ~vcpu:0 Xentry_isa.Reg.RAX))

let test_domain_idle_flags () =
  with_host (fun host ->
      let d = (Hypervisor.domains host).(0) in
      Alcotest.(check bool) "initially not idle" false (Domain.is_idle d ~vcpu:0);
      Domain.set_idle d ~vcpu:0 true;
      Alcotest.(check bool) "set idle" true (Domain.is_idle d ~vcpu:0))

let test_domain_pending_traps () =
  with_host (fun host ->
      let d = (Hypervisor.domains host).(0) in
      Domain.clear_pending_traps d ~vcpu:0;
      Alcotest.(check int64) "empty slot" (-1L)
        (Domain.pending_trap d ~vcpu:0 ~slot:0);
      Domain.set_pending_trap d ~vcpu:0 ~slot:2 ~trap:13;
      Alcotest.(check int64) "stored" 13L (Domain.pending_trap d ~vcpu:0 ~slot:2))

let test_domain_regions_cover_user_regs () =
  with_host (fun host ->
      let d = (Hypervisor.domains host).(1) in
      let regions = Domain.guest_visible_regions d in
      Alcotest.(check bool) "has user_regs region" true
        (List.exists
           (fun r ->
             r.Domain.addr = Layout.vcpu_area ~dom:1 ~vcpu:0
             && r.Domain.len >= 0x90)
           regions))

(* --- Event channels ----------------------------------------------------------- *)

let test_evtchn_send_sets_pending_and_upcall () =
  with_host (fun host ->
      let mem = Hypervisor.memory host in
      Event_channel.bind mem ~dom:1 ~port:5 ~state:Event_channel.Interdomain
        ~target_vcpu:0;
      Event_channel.send mem ~dom:1 ~port:5;
      Alcotest.(check bool) "pending" true (Event_channel.is_pending mem ~dom:1 ~port:5);
      Alcotest.(check bool) "upcall" true
        (Domain.upcall_pending (Hypervisor.domains host).(1) ~vcpu:0))

let test_evtchn_masked_no_upcall () =
  with_host (fun host ->
      let mem = Hypervisor.memory host in
      Domain.set_upcall_pending (Hypervisor.domains host).(1) ~vcpu:0 false;
      Event_channel.bind mem ~dom:1 ~port:9 ~state:Event_channel.Interdomain
        ~target_vcpu:0;
      Event_channel.set_mask mem ~dom:1 ~port:9 true;
      Event_channel.send mem ~dom:1 ~port:9;
      Alcotest.(check bool) "pending set" true
        (Event_channel.is_pending mem ~dom:1 ~port:9);
      Alcotest.(check bool) "no upcall" false
        (Domain.upcall_pending (Hypervisor.domains host).(1) ~vcpu:0))

let test_evtchn_high_port_word_selection () =
  with_host (fun host ->
      let mem = Hypervisor.memory host in
      Event_channel.bind mem ~dom:1 ~port:130 ~state:Event_channel.Interdomain
        ~target_vcpu:0;
      Event_channel.send mem ~dom:1 ~port:130;
      Alcotest.(check bool) "port 130 pending" true
        (Event_channel.is_pending mem ~dom:1 ~port:130);
      Alcotest.(check bool) "port 2 not pending" false
        (Event_channel.is_pending mem ~dom:1 ~port:2))

let test_evtchn_port_range_checked () =
  with_host (fun host ->
      let mem = Hypervisor.memory host in
      Alcotest.check_raises "port 256 rejected"
        (Invalid_argument "Event_channel: port out of range") (fun () ->
          Event_channel.send mem ~dom:0 ~port:256))

(* --- Scheduler ------------------------------------------------------------------ *)

let vid d = { Scheduler.dom = d; vcpu = 0 }

let test_scheduler_round_robin () =
  let s = Scheduler.create [ (vid 0, 256); (vid 1, 256); (vid 2, 256) ] in
  Alcotest.(check int) "starts at dom0" 0 (Scheduler.current s).Scheduler.dom;
  let next = Scheduler.pick_next s in
  Alcotest.(check int) "rotates" 1 next.Scheduler.dom;
  let next = Scheduler.pick_next s in
  Alcotest.(check int) "rotates again" 2 next.Scheduler.dom;
  let next = Scheduler.pick_next s in
  Alcotest.(check int) "wraps" 0 next.Scheduler.dom

let test_scheduler_credit_priority () =
  let s = Scheduler.create [ (vid 0, 256); (vid 1, 256) ] in
  (* Drain dom0's credits far below zero. *)
  for _ = 1 to 10 do
    Scheduler.tick s ()
  done;
  Alcotest.(check bool) "dom0 over" true (Scheduler.priority s (vid 0) = Scheduler.Over);
  let next = Scheduler.pick_next s in
  Alcotest.(check int) "under vcpu preferred" 1 next.Scheduler.dom

let test_scheduler_refill_when_all_over () =
  let s = Scheduler.create [ (vid 0, 256); (vid 1, 256) ] in
  for _ = 1 to 100 do
    Scheduler.tick s ();
    ignore (Scheduler.pick_next s)
  done;
  (* After refills someone must be runnable with sane credit. *)
  Alcotest.(check bool) "still schedulable" true (Scheduler.runnable_count s = 2)

let test_scheduler_block_wake () =
  let s = Scheduler.create [ (vid 0, 256); (vid 1, 256) ] in
  Scheduler.block s (vid 1);
  Alcotest.(check int) "one runnable" 1 (Scheduler.runnable_count s);
  Alcotest.(check bool) "blocked" false (Scheduler.is_runnable s (vid 1));
  Scheduler.wake s (vid 1);
  Alcotest.(check int) "two runnable" 2 (Scheduler.runnable_count s)

let test_scheduler_block_current_dispatches_next () =
  let s = Scheduler.create [ (vid 0, 256); (vid 1, 256) ] in
  Scheduler.block s (vid 0);
  Alcotest.(check int) "dom1 dispatched" 1 (Scheduler.current s).Scheduler.dom

let test_scheduler_weights () =
  let s = Scheduler.create [ (vid 0, 512); (vid 1, 128) ] in
  Alcotest.(check int) "weighted initial credit dom0" 512
    (Scheduler.credits s (vid 0));
  Alcotest.(check int) "weighted initial credit dom1" 128
    (Scheduler.credits s (vid 1))

let test_scheduler_copy_independent () =
  let s = Scheduler.create [ (vid 0, 256); (vid 1, 256) ] in
  let c = Scheduler.copy s in
  ignore (Scheduler.pick_next s);
  Alcotest.(check int) "copy unchanged" 0 (Scheduler.current c).Scheduler.dom

let test_scheduler_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Scheduler.create: no vcpus")
    (fun () -> ignore (Scheduler.create []));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Scheduler.create: weight must be positive") (fun () ->
      ignore (Scheduler.create [ (vid 0, 0) ]))

(* --- Handlers: every reason runs clean ----------------------------------------- *)

let request_for reason =
  (* A conservative, always-valid request for each reason. *)
  match reason with
  | Exit_reason.Irq _ -> Request.make ~reason ~args:[ 9L ] ~guest:[ 1L; 2L ]
  | Exit_reason.Apic _ -> Request.make ~reason ~args:[ 1L; 2L; 3L ] ~guest:[ 1L ]
  | Exit_reason.Softirq -> Request.make ~reason ~args:[ 0x0DL ] ~guest:[]
  | Exit_reason.Tasklet -> Request.make ~reason ~args:[ 5L; 1L ] ~guest:[]
  | Exit_reason.Exception Hw_exception.PF ->
      Request.make ~reason ~args:[ 0x7F80_1000L; 1L ] ~guest:[]
  | Exit_reason.Exception Hw_exception.GP ->
      Request.make ~reason ~args:[ 0L ] ~guest:[ 4L ]
  | Exit_reason.Exception _ -> Request.make ~reason ~args:[ 1L ] ~guest:[ 7L; 3L ]
  | Exit_reason.Hypercall h -> (
      match Hypercall.shape h with
      | Hypercall.Table_write -> Request.make ~reason ~args:[ 3L ] ~guest:[]
      | Hypercall.Mmu_batch ->
          Request.make ~reason ~args:[ 2L; 0x40_0000L ] ~guest:[]
      | Hypercall.Copy_buffer ->
          Request.make ~reason ~args:[ 0L; 0L; 8L ] ~guest:[]
      | Hypercall.Event_op -> Request.make ~reason ~args:[ 12L; 0L ] ~guest:[]
      | Hypercall.Sched -> Request.make ~reason ~args:[ 0L; 0x10000L ] ~guest:[]
      | Hypercall.Timer -> Request.make ~reason ~args:[ 50_000L ] ~guest:[]
      | Hypercall.Grant -> Request.make ~reason ~args:[ 3L ] ~guest:[]
      | Hypercall.Query -> Request.make ~reason ~args:[ 1L; 0x1000L ] ~guest:[]
      | Hypercall.Control -> Request.make ~reason ~args:[ 2L; 1L ] ~guest:[])

let test_all_handlers_reach_vm_entry () =
  let host = Hypervisor.create ~seed:11 () in
  Array.iter
    (fun reason ->
      let req = request_for reason in
      let result = Hypervisor.handle host req in
      Alcotest.check stop_testable
        (Printf.sprintf "%s reaches vm entry" (Exit_reason.name reason))
        Cpu.Vm_entry result.Cpu.stop)
    Exit_reason.all

let test_all_handlers_nontrivial_length () =
  Array.iter
    (fun reason ->
      let p = Handlers.program reason in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a body" (Exit_reason.name reason))
        true
        (Xentry_isa.Program.length p > 15))
    Exit_reason.all

let test_handlers_memoized () =
  Alcotest.(check bool) "same program object" true
    (Handlers.program Exit_reason.Softirq == Handlers.program Exit_reason.Softirq)

let test_handler_static_size () =
  (* The paper reports ~2,000 lines for Xentry; our synthesized Xen
     substrate should be of a comparable order of magnitude. *)
  let n = Handlers.static_instruction_count () in
  Alcotest.(check bool) "plausible total size" true (n > 2_000 && n < 20_000)

(* --- Handler semantics ----------------------------------------------------------- *)

let test_handler_evtchn_send_semantics () =
  let host = Hypervisor.create ~seed:3 () in
  let mem = Hypervisor.memory host in
  let dom = (Hypervisor.current_domain host).Domain.id in
  let port = 22 in
  Event_channel.clear_pending mem ~dom ~port;
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Event_channel_op)
      ~args:[ Int64.of_int port; 0L (* send *) ]
      ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  Alcotest.(check bool) "handler set pending bit" true
    (Event_channel.is_pending mem ~dom ~port);
  Alcotest.(check bool) "handler marked upcall" true
    (Domain.upcall_pending (Hypervisor.domains host).(dom) ~vcpu:0);
  (* Return value 0 in the guest's RAX slot. *)
  Alcotest.(check int64) "guest rax = 0" 0L
    (Domain.get_user_reg (Hypervisor.domains host).(dom) ~vcpu:0
       Xentry_isa.Reg.RAX)

let test_handler_evtchn_invalid_port_fails () =
  let host = Hypervisor.create ~seed:3 () in
  let dom = (Hypervisor.current_domain host).Domain.id in
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Event_channel_op)
      ~args:[ 999L; 0L ] ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  Alcotest.(check int64) "guest rax = -EINVAL" (-22L)
    (Domain.get_user_reg (Hypervisor.domains host).(dom) ~vcpu:0
       Xentry_isa.Reg.RAX)

let test_handler_timer_irq_updates_time () =
  let host = Hypervisor.create ~seed:5 () in
  let mem = Hypervisor.memory host in
  let req = Request.make ~reason:(Exit_reason.Irq 0) ~args:[ 0L ] ~guest:[] in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  let tsc = Vtime.read_last_tsc mem in
  Alcotest.(check bool) "tsc recorded" true (tsc > 0L);
  Alcotest.(check int64) "system time = scaled tsc"
    (Vtime.expected_system_time ~tsc)
    (Vtime.read_system_time mem);
  Alcotest.(check bool) "timer softirq raised" true
    (Int64.logand (Memory.load64 mem Layout.global_softirq_pending) 1L = 1L)

let test_handler_softirq_processes_and_clears () =
  let host = Hypervisor.create ~seed:5 () in
  let mem = Hypervisor.memory host in
  let req =
    Request.make ~reason:Exit_reason.Softirq ~args:[ 0x05L (* timer+rcu *) ]
      ~guest:[]
  in
  let before = Vtime.jiffies mem in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  Alcotest.(check int64) "bits consumed" 0L
    (Memory.load64 mem Layout.global_softirq_pending);
  Alcotest.(check bool) "timer action ran (jiffies advanced)" true
    (Vtime.jiffies mem > before)

let test_handler_tasklets_all_processed () =
  let host = Hypervisor.create ~seed:5 () in
  let mem = Hypervisor.memory host in
  let n = 6 in
  let req =
    Request.make ~reason:Exit_reason.Tasklet
      ~args:[ Int64.of_int n; 0L ]
      ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  for k = 0 to n - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "node %d done" k)
      1L
      (Memory.load64 mem (Int64.add (Layout.tasklet_node k) Layout.tasklet_done))
  done

let test_handler_cpuid_emulation_writes_guest_regs () =
  let host = Hypervisor.create ~seed:5 () in
  let dom = Hypervisor.current_domain host in
  let leaf = 4L in
  let req =
    Request.make
      ~reason:(Exit_reason.Exception Hw_exception.GP)
      ~args:[ 0L (* cpuid selector *) ]
      ~guest:[ leaf ]
  in
  let rip_before = Domain.get_user_rip dom ~vcpu:0 in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  (* The handler must write the simulated CPUID results for the leaf
     into the guest's save area. *)
  let cpu_probe = Cpu.create (Memory.create ()) in
  ignore cpu_probe;
  let expected_rax, expected_rbx, _, _ =
    (* Same deterministic cpuid function as the CPU's default. *)
    let mix k =
      let open Int64 in
      let z = mul (add leaf (of_int k)) 0x9E3779B97F4A7C15L in
      let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      logxor z (shift_right_logical z 27)
    in
    (mix 1, mix 2, mix 3, mix 4)
  in
  Alcotest.(check int64) "guest rax" expected_rax
    (Domain.get_user_reg dom ~vcpu:0 Xentry_isa.Reg.RAX);
  Alcotest.(check int64) "guest rbx" expected_rbx
    (Domain.get_user_reg dom ~vcpu:0 Xentry_isa.Reg.RBX);
  Alcotest.(check int64) "guest rip advanced" (Int64.add rip_before 2L)
    (Domain.get_user_rip dom ~vcpu:0)

let test_handler_pf_present_walk_sets_accessed () =
  let host = Hypervisor.create ~seed:5 () in
  let mem = Hypervisor.memory host in
  let va = 0x12345000L in
  let req =
    Request.make
      ~reason:(Exit_reason.Exception Hw_exception.PF)
      ~args:[ va; 1L ] ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  let l1_index = Int64.to_int (Int64.logand (Int64.shift_right_logical va 12) 511L) in
  let pte =
    Memory.load64 mem
      (Int64.add (Layout.pt_level_base 1) (Int64.of_int (l1_index * 8)))
  in
  Alcotest.(check bool) "accessed bit set" true
    (Int64.logand pte Layout.pte_accessed <> 0L)

let test_handler_pf_not_present_injects_trap () =
  let host = Hypervisor.create ~seed:5 () in
  let dom = Hypervisor.current_domain host in
  let req =
    Request.make
      ~reason:(Exit_reason.Exception Hw_exception.PF)
      ~args:[ 0x666000L; 0L (* not present *) ]
      ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  (* The queued #PF (vector 14) is delivered to the vcpu_info
     pending_sel field by the Listing-1 scan. *)
  let mem = Hypervisor.memory host in
  let sel =
    Memory.load64 mem
      (Int64.add (Layout.vcpu_info ~dom:dom.Domain.id ~vcpu:0) Layout.vi_pending_sel)
  in
  Alcotest.(check int64) "pending_sel = #PF vector" 14L sel

let test_handler_sched_yield_switches_context () =
  let host = Hypervisor.create ~seed:5 () in
  let before = Hypervisor.observed_current_vcpu host in
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Sched_op)
      ~args:[ 0L (* yield *) ]
      ~guest:[]
  in
  Hypervisor.prepare host req;
  let result = Hypervisor.execute host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  let after = Hypervisor.observed_current_vcpu host in
  Alcotest.(check bool) "current vcpu pointer changed" true (before <> after)

let test_handler_set_timer_op_programs_deadline () =
  let host = Hypervisor.create ~seed:5 () in
  let mem = Hypervisor.memory host in
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Set_timer_op)
      ~args:[ 777L ] ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  Alcotest.(check bool) "deadline in the future" true
    (Vtime.read_deadline mem > 777L)

let test_handler_grant_copies_frames () =
  let host = Hypervisor.create ~seed:5 () in
  let mem = Hypervisor.memory host in
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Grant_table_op)
      ~args:[ 4L ] ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  (* Entry 0 is granted (even): its frame must have been copied out. *)
  let copied = Memory.load64 mem (Int64.add Layout.bounce_buffer 0x1000L) in
  Alcotest.(check bool) "frame copied" true (copied <> 0L)

let test_handler_copy_hypercall_checksums () =
  let host = Hypervisor.create ~seed:5 () in
  let dom = Hypervisor.current_domain host in
  let words = 8 in
  let req =
    Request.make
      ~reason:(Exit_reason.Hypercall Hypercall.Console_io)
      ~args:[ 0L; 0L; Int64.of_int words ]
      ~guest:[]
  in
  let result = Hypervisor.handle host req in
  Alcotest.check stop_testable "clean" Cpu.Vm_entry result.Cpu.stop;
  (* Return value = xor of the copied words. *)
  let mem = Hypervisor.memory host in
  let expected = ref 0L in
  for k = 0 to words - 1 do
    expected :=
      Int64.logxor !expected
        (Memory.load64 mem (Int64.add Layout.guest_buffer (Int64.of_int (k * 8))))
  done;
  Alcotest.(check int64) "checksum returned" !expected
    (Domain.get_user_reg dom ~vcpu:0 Xentry_isa.Reg.RAX)

let test_handler_pmu_features_nonzero () =
  let host = Hypervisor.create ~seed:5 () in
  let req = Request.make ~reason:Exit_reason.Softirq ~args:[ 0x0FL ] ~guest:[] in
  let result = Hypervisor.handle host req in
  let s = result.Cpu.final_pmu in
  Alcotest.(check bool) "instructions counted" true (s.Pmu.inst > 10);
  Alcotest.(check bool) "branches counted" true (s.Pmu.branches > 2);
  Alcotest.(check bool) "loads counted" true (s.Pmu.loads > 2);
  Alcotest.(check bool) "stores counted" true (s.Pmu.stores > 2)

let test_handler_features_vary_with_args () =
  let host = Hypervisor.create ~seed:5 () in
  let run n =
    let req =
      Request.make ~reason:Exit_reason.Tasklet ~args:[ Int64.of_int n; 0L ]
        ~guest:[]
    in
    (Hypervisor.handle host req).Cpu.final_pmu.Pmu.inst
  in
  let short = run 1 and long = run 12 in
  Alcotest.(check bool) "longer chains retire more instructions" true
    (long > short + 10)

let test_hypervisor_clone_independent () =
  let host = Hypervisor.create ~seed:5 () in
  let clone = Hypervisor.clone host in
  let req = Request.make ~reason:(Exit_reason.Irq 0) ~args:[ 0L ] ~guest:[] in
  ignore (Hypervisor.handle host req);
  (* The clone's memory must not have seen the timer update. *)
  Alcotest.(check int64) "clone time untouched" 0L
    (Vtime.read_system_time (Hypervisor.memory clone))

let test_hypervisor_clone_reproduces_golden_run () =
  let host = Hypervisor.create ~seed:5 () in
  let req =
    Request.make ~reason:Exit_reason.Tasklet ~args:[ 4L; 1L ] ~guest:[]
  in
  Hypervisor.prepare host req;
  let a = Hypervisor.clone host in
  let b = Hypervisor.clone host in
  let ra = Hypervisor.execute a req in
  let rb = Hypervisor.execute b req in
  Alcotest.(check int) "same instruction count" ra.Cpu.steps rb.Cpu.steps;
  Alcotest.(check int) "same loads" ra.Cpu.final_pmu.Pmu.loads
    rb.Cpu.final_pmu.Pmu.loads

(* --- qcheck ------------------------------------------------------------------ *)

let prop_all_reasons_deterministic =
  QCheck.Test.make ~name:"handler execution is deterministic" ~count:40
    QCheck.(int_range 0 (Exit_reason.count - 1))
    (fun id ->
      let reason = Option.get (Exit_reason.of_id id) in
      let run () =
        let host = Hypervisor.create ~seed:99 () in
        let req = request_for reason in
        let r = Hypervisor.handle host req in
        (r.Cpu.steps, r.Cpu.final_pmu)
      in
      run () = run ())

let prop_evtchn_handler_matches_reference =
  QCheck.Test.make
    ~name:"evtchn_send handler agrees with the reference semantics" ~count:60
    QCheck.(pair (int_range 1 (Layout.evtchn_ports - 1)) bool)
    (fun (port, masked) ->
      (* Run the synthesized handler on one host and the OCaml
         reference (Event_channel.send) on an identical clone; the
         guest-visible event state must agree. *)
      let host = Hypervisor.create ~seed:1234 () in
      let dom = (Hypervisor.current_domain host).Domain.id in
      let req =
        Request.make
          ~reason:(Exit_reason.Hypercall Hypercall.Event_channel_op)
          ~args:[ Int64.of_int port; 0L ]
          ~guest:[]
      in
      Hypervisor.prepare host req;
      Event_channel.set_mask (Hypervisor.memory host) ~dom ~port masked;
      Domain.set_upcall_pending (Hypervisor.domains host).(dom) ~vcpu:0 false;
      Event_channel.clear_pending (Hypervisor.memory host) ~dom ~port;
      let reference = Hypervisor.clone host in
      let result = Hypervisor.execute host req in
      Event_channel.send (Hypervisor.memory reference) ~dom ~port;
      result.Cpu.stop = Cpu.Vm_entry
      && Event_channel.is_pending (Hypervisor.memory host) ~dom ~port
         = Event_channel.is_pending (Hypervisor.memory reference) ~dom ~port
      && Domain.upcall_pending (Hypervisor.domains host).(dom) ~vcpu:0
         = Domain.upcall_pending (Hypervisor.domains reference).(dom) ~vcpu:0)

let prop_time_handler_matches_reference =
  QCheck.Test.make
    ~name:"timer-irq system time equals the reference scaling" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun tsc_offset ->
      let host = Hypervisor.create ~seed:77 () in
      let cpu = Hypervisor.cpu host in
      Cpu.set_tsc cpu (Int64.add (Cpu.get_tsc cpu) (Int64.of_int tsc_offset));
      let req = Request.make ~reason:(Exit_reason.Irq 0) ~args:[ 0L ] ~guest:[] in
      let result = Hypervisor.handle host req in
      let mem = Hypervisor.memory host in
      result.Cpu.stop = Cpu.Vm_entry
      && Vtime.read_system_time mem
         = Vtime.expected_system_time ~tsc:(Vtime.read_last_tsc mem))

let prop_scheduler_never_empty =
  QCheck.Test.make ~name:"scheduler always has a current vcpu after ops"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 2))
    (fun ops ->
      let s = Scheduler.create [ (vid 0, 256); (vid 1, 256); (vid 2, 128) ] in
      List.iter
        (fun op ->
          match op with
          | 0 -> Scheduler.tick s ()
          | 1 -> ignore (Scheduler.pick_next s)
          | _ ->
              (* keep at least one runnable: wake everyone first *)
              Scheduler.wake s (vid 1);
              Scheduler.wake s (vid 2);
              Scheduler.block s (vid 2))
        ops;
      ignore (Scheduler.current s);
      true)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_all_reasons_deterministic; prop_scheduler_never_empty;
        prop_evtchn_handler_matches_reference;
        prop_time_handler_matches_reference;
      ]
  in
  Alcotest.run "xentry_vmm"
    [
      ( "exit_reason",
        [
          Alcotest.test_case "count" `Quick test_exit_reason_count;
          Alcotest.test_case "id roundtrip" `Quick test_exit_reason_id_roundtrip;
          Alcotest.test_case "names unique" `Quick test_exit_reason_names_unique;
          Alcotest.test_case "categories" `Quick test_exit_reason_categories;
        ] );
      ( "hypercall",
        [
          Alcotest.test_case "count" `Quick test_hypercall_count;
          Alcotest.test_case "number roundtrip" `Quick
            test_hypercall_number_roundtrip;
          Alcotest.test_case "known numbers" `Quick test_hypercall_known_numbers;
        ] );
      ( "layout",
        [
          Alcotest.test_case "domains disjoint" `Quick test_layout_domains_disjoint;
          Alcotest.test_case "request args bounds" `Quick
            test_layout_request_args_bounds;
          Alcotest.test_case "scale tsc" `Quick test_layout_scale_tsc_matches_vtime;
          Alcotest.test_case "map host validation" `Quick
            test_layout_map_host_validation;
        ] );
      ( "domain",
        [
          Alcotest.test_case "user regs" `Quick test_domain_user_regs_roundtrip;
          Alcotest.test_case "idle flags" `Quick test_domain_idle_flags;
          Alcotest.test_case "pending traps" `Quick test_domain_pending_traps;
          Alcotest.test_case "regions" `Quick test_domain_regions_cover_user_regs;
        ] );
      ( "event_channel",
        [
          Alcotest.test_case "send" `Quick test_evtchn_send_sets_pending_and_upcall;
          Alcotest.test_case "masked" `Quick test_evtchn_masked_no_upcall;
          Alcotest.test_case "high port" `Quick test_evtchn_high_port_word_selection;
          Alcotest.test_case "range check" `Quick test_evtchn_port_range_checked;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round robin" `Quick test_scheduler_round_robin;
          Alcotest.test_case "credit priority" `Quick test_scheduler_credit_priority;
          Alcotest.test_case "refill" `Quick test_scheduler_refill_when_all_over;
          Alcotest.test_case "block/wake" `Quick test_scheduler_block_wake;
          Alcotest.test_case "block current" `Quick
            test_scheduler_block_current_dispatches_next;
          Alcotest.test_case "weights" `Quick test_scheduler_weights;
          Alcotest.test_case "copy" `Quick test_scheduler_copy_independent;
          Alcotest.test_case "validation" `Quick test_scheduler_validation;
        ] );
      ( "handlers",
        [
          Alcotest.test_case "all reach vm entry" `Quick
            test_all_handlers_reach_vm_entry;
          Alcotest.test_case "all nontrivial" `Quick
            test_all_handlers_nontrivial_length;
          Alcotest.test_case "memoized" `Quick test_handlers_memoized;
          Alcotest.test_case "static size" `Quick test_handler_static_size;
        ] );
      ( "handler-semantics",
        [
          Alcotest.test_case "evtchn send" `Quick test_handler_evtchn_send_semantics;
          Alcotest.test_case "evtchn invalid port" `Quick
            test_handler_evtchn_invalid_port_fails;
          Alcotest.test_case "timer irq time" `Quick test_handler_timer_irq_updates_time;
          Alcotest.test_case "softirq clears" `Quick
            test_handler_softirq_processes_and_clears;
          Alcotest.test_case "tasklets processed" `Quick
            test_handler_tasklets_all_processed;
          Alcotest.test_case "cpuid emulation" `Quick
            test_handler_cpuid_emulation_writes_guest_regs;
          Alcotest.test_case "pf walk accessed" `Quick
            test_handler_pf_present_walk_sets_accessed;
          Alcotest.test_case "pf inject" `Quick test_handler_pf_not_present_injects_trap;
          Alcotest.test_case "sched yield" `Quick
            test_handler_sched_yield_switches_context;
          Alcotest.test_case "set timer op" `Quick
            test_handler_set_timer_op_programs_deadline;
          Alcotest.test_case "grant copy" `Quick test_handler_grant_copies_frames;
          Alcotest.test_case "copy checksum" `Quick
            test_handler_copy_hypercall_checksums;
          Alcotest.test_case "pmu features" `Quick test_handler_pmu_features_nonzero;
          Alcotest.test_case "features vary" `Quick test_handler_features_vary_with_args;
          Alcotest.test_case "clone independent" `Quick
            test_hypervisor_clone_independent;
          Alcotest.test_case "clone reproduces" `Quick
            test_hypervisor_clone_reproduces_golden_run;
        ] );
      ("properties", qsuite);
    ]
