test/test_machine.ml: Alcotest Array Cond Cpu Hw_exception Instr Int64 List Memory Operand Pmu Printf Program QCheck QCheck_alcotest Reg Trace Xentry_isa Xentry_machine
