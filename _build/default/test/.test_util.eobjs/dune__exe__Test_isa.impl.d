test/test_isa.ml: Alcotest Array Cond Flags Format Instr List Operand Printf Program QCheck QCheck_alcotest Reg String Xentry_isa
