test/test_util.ml: Alcotest Array Bits Gen Hashtbl List Option QCheck QCheck_alcotest Report Rng Stats String Xentry_util
