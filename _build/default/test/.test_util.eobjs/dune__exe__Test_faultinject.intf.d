test/test_faultinject.mli:
