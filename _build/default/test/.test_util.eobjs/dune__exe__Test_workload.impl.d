test/test_workload.ml: Alcotest Array Cpu Exit_reason Float Hashtbl Hypervisor List Profile QCheck QCheck_alcotest Request Rng Stream Xentry_machine Xentry_util Xentry_vmm Xentry_workload
