test/test_mlearn.mli:
