test/test_xentry.mli:
