test/test_mlearn.ml: Alcotest Arff Array Dataset Forest List Metrics QCheck QCheck_alcotest String Tree Tree_io Xentry_mlearn Xentry_util
