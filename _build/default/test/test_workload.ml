(* Tests for Xentry_workload: benchmark profiles, activation-rate
   bands (Fig 3), reason mixes, request validity and streams. *)

open Xentry_util
open Xentry_workload
open Xentry_vmm
open Xentry_machine

let all_benchmarks = Array.to_list Profile.all_benchmarks

(* --- Profiles --------------------------------------------------------- *)

let test_six_benchmarks () =
  Alcotest.(check int) "six benchmarks" 6 (Array.length Profile.all_benchmarks)

let test_benchmark_names () =
  Alcotest.(check (list string)) "paper order"
    [ "mcf"; "bzip2"; "freqmine"; "canneal"; "x264"; "postmark" ]
    (List.map Profile.benchmark_name all_benchmarks)

let test_workload_classes () =
  (* Paper §V-A: postmark/freqmine/x264 exercise I/O, canneal/bzip2
     CPU, mcf memory. *)
  let cls b = Profile.workload_class (Profile.get b) in
  Alcotest.(check bool) "mcf memory" true (cls Profile.Mcf = Profile.Memory_bound);
  Alcotest.(check bool) "bzip2 cpu" true (cls Profile.Bzip2 = Profile.Cpu_bound);
  Alcotest.(check bool) "postmark io" true (cls Profile.Postmark = Profile.Io_bound);
  Alcotest.(check bool) "freqmine io" true (cls Profile.Freqmine = Profile.Io_bound)

let test_pv_rates_in_paper_band () =
  (* Fig 3: PV activation frequencies between 5,000/s and 100,000/s,
     with freqmine's peak toward 650,000/s. *)
  let rng = Rng.create 3 in
  List.iter
    (fun b ->
      let p = Profile.get b in
      for _ = 1 to 200 do
        let r = Profile.sample_activation_rate p Profile.PV rng in
        Alcotest.(check bool)
          (Profile.benchmark_name b ^ " pv rate plausible")
          true
          (r >= 5_000.0 && r <= 650_000.0)
      done)
    all_benchmarks

let test_hvm_rates_lower_than_pv () =
  (* The paper observes PV rates generally higher than HVM. *)
  let rng = Rng.create 4 in
  List.iter
    (fun b ->
      let p = Profile.get b in
      let mean mode =
        let total = ref 0.0 in
        for _ = 1 to 300 do
          total := !total +. Profile.sample_activation_rate p mode rng
        done;
        !total /. 300.0
      in
      Alcotest.(check bool)
        (Profile.benchmark_name b ^ " PV > HVM")
        true
        (mean Profile.PV > mean Profile.HVM))
    all_benchmarks

let test_hvm_rates_in_band () =
  (* HVM: "Most of them are between 2,000/s and 10,000/s". *)
  let rng = Rng.create 5 in
  let in_band = ref 0 and total = ref 0 in
  List.iter
    (fun b ->
      let p = Profile.get b in
      for _ = 1 to 200 do
        incr total;
        let r = Profile.sample_activation_rate p Profile.HVM rng in
        if r >= 2_000.0 && r <= 10_000.0 then incr in_band
      done)
    all_benchmarks;
  Alcotest.(check bool) "most HVM rates in 2k-10k" true
    (float_of_int !in_band /. float_of_int !total > 0.6)

let test_freqmine_peak_highest () =
  let rng = Rng.create 6 in
  let peak b =
    let p = Profile.get b in
    let m = ref 0.0 in
    for _ = 1 to 2000 do
      m := Float.max !m (Profile.sample_activation_rate p Profile.PV rng)
    done;
    !m
  in
  let fm = peak Profile.Freqmine in
  Alcotest.(check bool) "freqmine peak dominates" true
    (List.for_all (fun b -> b = Profile.Freqmine || peak b < fm) all_benchmarks);
  Alcotest.(check bool) "peak approaches 650k" true (fm > 300_000.0)

let test_reason_mix_sums_to_one () =
  List.iter
    (fun b ->
      List.iter
        (fun mode ->
          let mix = Profile.reason_mix (Profile.get b) mode in
          let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
          Alcotest.(check (float 1e-6)) "weights sum to 1" 1.0 total)
        [ Profile.PV; Profile.HVM ])
    all_benchmarks

let test_pv_hypercall_heavy_hvm_exception_heavy () =
  let weight mix name = try List.assoc name mix with Not_found -> 0.0 in
  List.iter
    (fun b ->
      let p = Profile.get b in
      let pv = Profile.reason_mix p Profile.PV in
      let hvm = Profile.reason_mix p Profile.HVM in
      Alcotest.(check bool) "PV has more hypercalls" true
        (weight pv "hypercall" > weight hvm "hypercall");
      Alcotest.(check bool) "HVM has more exceptions" true
        (weight hvm "exception" > weight pv "exception"))
    all_benchmarks

let test_physical_rates_ordering () =
  (* Fig 11: postmark's recovery overhead dominates, bzip2/mcf lowest;
     that ordering comes from the physical trace rates. *)
  let tr b = Profile.trace_rate (Profile.get b) in
  Alcotest.(check bool) "postmark highest" true
    (List.for_all
       (fun b -> b = Profile.Postmark || tr b < tr Profile.Postmark)
       all_benchmarks);
  Alcotest.(check bool) "bzip2 lowest" true
    (List.for_all (fun b -> b = Profile.Bzip2 || tr b >= tr Profile.Bzip2) all_benchmarks)

(* --- Request validity ---------------------------------------------------- *)

let test_sampled_requests_run_clean () =
  (* Every request a profile can generate must execute fault-free to
     VM entry: error paths are reserved for fault injection. *)
  let host = Hypervisor.create ~seed:31 () in
  let rng = Rng.create 77 in
  List.iter
    (fun b ->
      let p = Profile.get b in
      List.iter
        (fun mode ->
          for _ = 1 to 150 do
            let req = Profile.sample_request p mode rng in
            let result = Hypervisor.handle host req in
            match result.Cpu.stop with
            | Cpu.Vm_entry -> ()
            | s ->
                Alcotest.failf "%s/%s: %s stopped with %a"
                  (Profile.benchmark_name b) (Profile.mode_name mode)
                  (Exit_reason.name req.Request.reason) Cpu.pp_stop s
          done)
        [ Profile.PV; Profile.HVM ])
    all_benchmarks

let test_requests_cover_many_reasons () =
  let p = Profile.get Profile.Postmark in
  let rng = Rng.create 123 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 3000 do
    let req = Profile.sample_request p Profile.PV rng in
    Hashtbl.replace seen (Exit_reason.to_id req.Request.reason) ()
  done;
  Alcotest.(check bool) "at least half the reasons appear" true
    (Hashtbl.length seen > Exit_reason.count / 2)

let test_mean_handler_length_reasonable () =
  let p = Profile.get Profile.Postmark in
  let len = Profile.mean_handler_length p Profile.PV in
  Alcotest.(check bool) "within detection-latency scale" true
    (len > 50.0 && len < 5_000.0)

(* --- Stream ----------------------------------------------------------------- *)

let test_stream_rates_shape () =
  let s = Stream.create (Profile.get Profile.Mcf) Profile.PV (Rng.create 9) in
  let rates = Stream.activation_rates s ~seconds:50 in
  Alcotest.(check int) "one per second" 50 (Array.length rates);
  Array.iter
    (fun r -> Alcotest.(check bool) "positive" true (r > 0.0))
    rates

let test_stream_next_second_caps_events () =
  let s = Stream.create (Profile.get Profile.Postmark) Profile.PV (Rng.create 10) in
  let rate, events = Stream.next_second s ~max_events:25 in
  Alcotest.(check bool) "rate positive" true (rate > 0.0);
  Alcotest.(check bool) "capped" true (List.length events <= 25)

let test_stream_deterministic () =
  let mk () = Stream.create (Profile.get Profile.X264) Profile.PV (Rng.create 11) in
  let a = Stream.activation_rates (mk ()) ~seconds:10 in
  let b = Stream.activation_rates (mk ()) ~seconds:10 in
  Alcotest.(check bool) "same seed same stream" true (a = b)

(* --- qcheck -------------------------------------------------------------------- *)

let prop_requests_have_bounded_args =
  QCheck.Test.make ~name:"request args stay in staging range" ~count:300
    QCheck.(pair (int_range 0 5) int)
    (fun (bidx, seed) ->
      let p = Profile.get Profile.all_benchmarks.(bidx) in
      let rng = Rng.create seed in
      let req = Profile.sample_request p Profile.PV rng in
      Array.length req.Request.args = 8
      && Array.length req.Request.guest = 6)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_requests_have_bounded_args ] in
  Alcotest.run "xentry_workload"
    [
      ( "profile",
        [
          Alcotest.test_case "six benchmarks" `Quick test_six_benchmarks;
          Alcotest.test_case "names" `Quick test_benchmark_names;
          Alcotest.test_case "classes" `Quick test_workload_classes;
          Alcotest.test_case "pv band" `Quick test_pv_rates_in_paper_band;
          Alcotest.test_case "pv > hvm" `Quick test_hvm_rates_lower_than_pv;
          Alcotest.test_case "hvm band" `Quick test_hvm_rates_in_band;
          Alcotest.test_case "freqmine peak" `Slow test_freqmine_peak_highest;
          Alcotest.test_case "mix sums" `Quick test_reason_mix_sums_to_one;
          Alcotest.test_case "pv/hvm mixes" `Quick
            test_pv_hypercall_heavy_hvm_exception_heavy;
          Alcotest.test_case "physical ordering" `Quick test_physical_rates_ordering;
        ] );
      ( "requests",
        [
          Alcotest.test_case "run clean" `Slow test_sampled_requests_run_clean;
          Alcotest.test_case "reason coverage" `Quick test_requests_cover_many_reasons;
          Alcotest.test_case "mean length" `Quick test_mean_handler_length_reasonable;
        ] );
      ( "stream",
        [
          Alcotest.test_case "rates shape" `Quick test_stream_rates_shape;
          Alcotest.test_case "caps events" `Quick test_stream_next_second_caps_events;
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
        ] );
      ("properties", qsuite);
    ]
