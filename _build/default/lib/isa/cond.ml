type t = E | NE | L | LE | G | GE | B | BE | A | AE | S | NS

let eval c rflags =
  let f flag = Flags.get rflags flag in
  let zf = f Flags.ZF and sf = f Flags.SF and cf = f Flags.CF and ofl = f Flags.OF in
  match c with
  | E -> zf
  | NE -> not zf
  | L -> sf <> ofl
  | LE -> zf || sf <> ofl
  | G -> (not zf) && sf = ofl
  | GE -> sf = ofl
  | B -> cf
  | BE -> cf || zf
  | A -> (not cf) && not zf
  | AE -> not cf
  | S -> sf
  | NS -> not sf

let negate = function
  | E -> NE
  | NE -> E
  | L -> GE
  | LE -> G
  | G -> LE
  | GE -> L
  | B -> AE
  | BE -> A
  | A -> BE
  | AE -> B
  | S -> NS
  | NS -> S

let name = function
  | E -> "e"
  | NE -> "ne"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | B -> "b"
  | BE -> "be"
  | A -> "a"
  | AE -> "ae"
  | S -> "s"
  | NS -> "ns"

let all = [| E; NE; L; LE; G; GE; B; BE; A; AE; S; NS |]
