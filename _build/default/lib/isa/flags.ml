type t = CF | PF | ZF | SF | OF

let bit = function CF -> 0 | PF -> 2 | ZF -> 6 | SF -> 7 | OF -> 11
let all = [| CF; PF; ZF; SF; OF |]
let get image f = Xentry_util.Bits.test image (bit f)

let set image f v =
  if v then Xentry_util.Bits.set image (bit f)
  else Xentry_util.Bits.clear image (bit f)

let parity_low_byte v =
  (* x86 PF: set when the low byte has an even number of set bits. *)
  let low = Int64.to_int (Int64.logand v 0xFFL) in
  let rec popcount n acc = if n = 0 then acc else popcount (n lsr 1) (acc + (n land 1)) in
  popcount low 0 mod 2 = 0

let of_result ?(carry = false) ?(overflow = false) old_rflags value =
  let image = set old_rflags ZF (value = 0L) in
  let image = set image SF (Int64.compare value 0L < 0) in
  let image = set image PF (parity_low_byte value) in
  let image = set image CF carry in
  set image OF overflow

let name = function CF -> "CF" | PF -> "PF" | ZF -> "ZF" | SF -> "SF" | OF -> "OF"
