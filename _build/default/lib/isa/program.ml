type t = {
  name : string;
  code : int Instr.t array;
  labels : (string * int) list;
}

let instruction_bytes = 8
let length t = Array.length t.code
let label_position t name = List.assoc_opt name t.labels

exception Undefined_label of string
exception Duplicate_label of string

let pp ppf t =
  Format.fprintf ppf "%s (%d instructions):@\n" t.name (Array.length t.code);
  let labels_at i =
    List.filter_map (fun (n, p) -> if p = i then Some n else None) t.labels
  in
  Array.iteri
    (fun i instr ->
      List.iter (fun l -> Format.fprintf ppf "%s:@\n" l) (labels_at i);
      Format.fprintf ppf "  %4d  %a@\n" i (Instr.pp Format.pp_print_int) instr)
    t.code

module Asm = struct
  type builder = {
    bname : string;
    mutable instrs : string Instr.t list;  (* reversed *)
    mutable count : int;
    mutable blabels : (string * int) list;
    mutable fresh : int;
  }

  let create bname = { bname; instrs = []; count = 0; blabels = []; fresh = 0 }

  let emit b instr =
    b.instrs <- instr :: b.instrs;
    b.count <- b.count + 1

  let emit_all b instrs = List.iter (emit b) instrs

  let label b name =
    if List.mem_assoc name b.blabels then raise (Duplicate_label name);
    b.blabels <- (name, b.count) :: b.blabels

  let fresh_label b stem =
    b.fresh <- b.fresh + 1;
    Printf.sprintf ".%s_%d" stem b.fresh

  let here b = b.count

  let assemble b =
    let labels = List.rev b.blabels in
    let resolve name =
      match List.assoc_opt name labels with
      | Some pos -> pos
      | None -> raise (Undefined_label name)
    in
    let code =
      Array.of_list (List.rev_map (Instr.map_label resolve) b.instrs)
    in
    { name = b.bname; code; labels }
end

let assemble name build =
  let b = Asm.create name in
  build b;
  Asm.assemble b
