(** Status flags stored in the RFLAGS register image.

    Bit positions follow x86-64 so that a single-bit flip injected into
    RFLAGS perturbs a realistic flag. *)

type t = CF  (** carry, bit 0 *)
       | PF  (** parity, bit 2 *)
       | ZF  (** zero, bit 6 *)
       | SF  (** sign, bit 7 *)
       | OF  (** overflow, bit 11 *)

val bit : t -> int
(** x86 bit position of the flag. *)

val all : t array

val get : int64 -> t -> bool
(** Read a flag out of an RFLAGS image. *)

val set : int64 -> t -> bool -> int64
(** Write a flag into an RFLAGS image. *)

val of_result : ?carry:bool -> ?overflow:bool -> int64 -> int64 -> int64
(** [of_result ~carry ~overflow old_rflags value] updates ZF/SF/PF from
    [value] and CF/OF from the optional arguments (defaulting to
    clear), preserving non-flag bits of [old_rflags]. *)

val name : t -> string
