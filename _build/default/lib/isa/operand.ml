type mem = {
  base : Reg.gpr option;
  index : Reg.gpr option;
  scale : int;
  disp : int64;
}

type t = Reg of Reg.gpr | Imm of int64 | Mem of mem

let reg g = Reg g
let imm v = Imm v
let imm_int v = Imm (Int64.of_int v)

let mem ?index ?(scale = 1) ?(disp = 0L) base =
  if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
    invalid_arg "Operand.mem: scale must be 1, 2, 4 or 8";
  Mem { base = Some base; index; scale; disp }

let mem_abs addr = Mem { base = None; index = None; scale = 1; disp = addr }

let regs_used = function
  | Reg g -> [ g ]
  | Imm _ -> []
  | Mem { base; index; _ } ->
      let add acc = function Some g -> g :: acc | None -> acc in
      add (add [] index) base

let is_mem = function Mem _ -> true | Reg _ | Imm _ -> false

let pp ppf = function
  | Reg g -> Reg.pp_gpr ppf g
  | Imm v -> Format.fprintf ppf "$%Ld" v
  | Mem { base; index; scale; disp } ->
      let pp_base ppf = function
        | Some g -> Reg.pp_gpr ppf g
        | None -> ()
      in
      let pp_index ppf = function
        | Some g -> Format.fprintf ppf "+%a*%d" Reg.pp_gpr g scale
        | None -> ()
      in
      Format.fprintf ppf "[%a%a%s%Ld]" pp_base base pp_index index
        (if Int64.compare disp 0L >= 0 then "+" else "")
        disp
