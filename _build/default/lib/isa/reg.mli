(** Architectural registers of the simulated 64-bit CPU.

    The register file mirrors x86-64's sixteen general-purpose
    registers plus the instruction pointer and the flags register —
    exactly the architectural state the paper's fault model targets
    ("general purpose registers, instruction and stack pointers and
    flags", §V-B). *)

type gpr =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val gpr_count : int
(** 16. *)

val all_gprs : gpr array
(** All GPRs in index order. *)

val gpr_index : gpr -> int
(** Stable index in \[0, 15\] for array-backed register files. *)

val gpr_of_index : int -> gpr
(** Inverse of [gpr_index]; raises [Invalid_argument] out of range. *)

val gpr_name : gpr -> string
(** Lowercase x86 name, e.g. ["rax"], ["r13"]. *)

val gpr_of_name : string -> gpr option

type arch =
  | Gpr of gpr
  | Rip  (** instruction pointer *)
  | Rflags  (** status flags *)
      (** A fault-injection target: any architectural register. *)

val all_arch : arch array
(** The 18 injectable registers. *)

val arch_name : arch -> string

val pp_gpr : Format.formatter -> gpr -> unit
val pp_arch : Format.formatter -> arch -> unit
