(** Branch condition codes, evaluated against an RFLAGS image. *)

type t =
  | E   (** equal / zero *)
  | NE  (** not equal *)
  | L   (** signed less *)
  | LE  (** signed less-or-equal *)
  | G   (** signed greater *)
  | GE  (** signed greater-or-equal *)
  | B   (** unsigned below *)
  | BE  (** unsigned below-or-equal *)
  | A   (** unsigned above *)
  | AE  (** unsigned above-or-equal *)
  | S   (** sign set *)
  | NS  (** sign clear *)

val eval : t -> int64 -> bool
(** [eval c rflags] decides the condition from the flags image, with
    x86 semantics (e.g. [L] = SF<>OF, [B] = CF). *)

val negate : t -> t

val name : t -> string
(** e.g. ["je"]-style suffix: ["e"], ["ne"], ["l"], ... *)

val all : t array
