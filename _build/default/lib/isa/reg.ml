type gpr =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let gpr_count = 16

let all_gprs =
  [|
    RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP; R8; R9; R10; R11; R12; R13; R14;
    R15;
  |]

let gpr_index = function
  | RAX -> 0
  | RBX -> 1
  | RCX -> 2
  | RDX -> 3
  | RSI -> 4
  | RDI -> 5
  | RBP -> 6
  | RSP -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let gpr_of_index i =
  if i < 0 || i >= gpr_count then invalid_arg "Reg.gpr_of_index";
  all_gprs.(i)

let gpr_name = function
  | RAX -> "rax"
  | RBX -> "rbx"
  | RCX -> "rcx"
  | RDX -> "rdx"
  | RSI -> "rsi"
  | RDI -> "rdi"
  | RBP -> "rbp"
  | RSP -> "rsp"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let gpr_of_name s =
  let rec find i =
    if i >= gpr_count then None
    else if gpr_name all_gprs.(i) = s then Some all_gprs.(i)
    else find (i + 1)
  in
  find 0

type arch = Gpr of gpr | Rip | Rflags

let all_arch =
  Array.append
    (Array.map (fun g -> Gpr g) all_gprs)
    [| Rip; Rflags |]

let arch_name = function
  | Gpr g -> gpr_name g
  | Rip -> "rip"
  | Rflags -> "rflags"

let pp_gpr ppf g = Format.pp_print_string ppf (gpr_name g)
let pp_arch ppf a = Format.pp_print_string ppf (arch_name a)
