lib/isa/cond.mli:
