lib/isa/cond.ml: Flags
