lib/isa/flags.ml: Int64 Xentry_util
