lib/isa/instr.ml: Array Cond Format List Operand Reg
