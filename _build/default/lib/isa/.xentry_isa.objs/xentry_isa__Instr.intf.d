lib/isa/instr.mli: Cond Format Operand Reg
