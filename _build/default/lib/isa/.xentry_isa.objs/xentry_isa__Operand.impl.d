lib/isa/operand.ml: Format Int64 Reg
