lib/isa/flags.mli:
