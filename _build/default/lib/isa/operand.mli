(** Instruction operands: registers, immediates and memory references
    with x86-style base + index*scale + displacement addressing. *)

type mem = {
  base : Reg.gpr option;
  index : Reg.gpr option;
  scale : int;  (** 1, 2, 4 or 8 *)
  disp : int64;
}

type t =
  | Reg of Reg.gpr
  | Imm of int64
  | Mem of mem

val reg : Reg.gpr -> t
val imm : int64 -> t
val imm_int : int -> t

val mem : ?index:Reg.gpr -> ?scale:int -> ?disp:int64 -> Reg.gpr -> t
(** [mem base ~index ~scale ~disp] builds a memory operand
    \[base + index*scale + disp\]. *)

val mem_abs : int64 -> t
(** Absolute address operand. *)

val regs_used : t -> Reg.gpr list
(** Registers read when evaluating this operand as a source or as a
    memory address (for [Mem]: the base and index registers). *)

val is_mem : t -> bool

val pp : Format.formatter -> t -> unit
