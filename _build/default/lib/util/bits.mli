(** Bit manipulation on 64-bit words.

    The fault model is a single bit flip in an architectural register
    (paper §V-B); these helpers implement flips, masks and population
    counts over [int64] register images. *)

val flip : int64 -> int -> int64
(** [flip w i] toggles bit [i] (0 = least significant).  Raises
    [Invalid_argument] unless [0 <= i < 64]. *)

val test : int64 -> int -> bool
(** [test w i] is the value of bit [i]. *)

val set : int64 -> int -> int64

val clear : int64 -> int -> int64

val popcount : int64 -> int
(** Number of set bits. *)

val hamming : int64 -> int64 -> int
(** Hamming distance between two words. *)

val low_bits : int64 -> int -> int64
(** [low_bits w n] keeps only the [n] least significant bits
    ([n = 64] is the identity, [n = 0] is zero). *)

val sign_bit : int64 -> bool
(** Bit 63. *)

val to_hex : int64 -> string
(** Zero-padded 16-digit lowercase hex, e.g. ["0000000000001f2a"]. *)
