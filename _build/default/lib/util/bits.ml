let check_index i =
  if i < 0 || i > 63 then invalid_arg "Bits: bit index out of [0, 63]"

let flip w i =
  check_index i;
  Int64.logxor w (Int64.shift_left 1L i)

let test w i =
  check_index i;
  Int64.logand (Int64.shift_right_logical w i) 1L = 1L

let set w i =
  check_index i;
  Int64.logor w (Int64.shift_left 1L i)

let clear w i =
  check_index i;
  Int64.logand w (Int64.lognot (Int64.shift_left 1L i))

let popcount w =
  let rec go w acc =
    if w = 0L then acc
    else go (Int64.logand w (Int64.sub w 1L)) (acc + 1)
  in
  go w 0

let hamming a b = popcount (Int64.logxor a b)

let low_bits w n =
  if n < 0 || n > 64 then invalid_arg "Bits.low_bits: width out of [0, 64]";
  if n = 64 then w
  else if n = 0 then 0L
  else Int64.logand w (Int64.sub (Int64.shift_left 1L n) 1L)

let sign_bit w = test w 63

let to_hex w = Printf.sprintf "%016Lx" w
