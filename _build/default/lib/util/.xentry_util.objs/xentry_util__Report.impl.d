lib/util/report.ml: Array Buffer Bytes Float List Printf Stats String
