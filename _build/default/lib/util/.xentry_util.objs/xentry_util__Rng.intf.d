lib/util/rng.mli:
