lib/util/bits.mli:
