lib/util/report.mli: Stats
