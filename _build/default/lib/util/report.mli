(** Plain-text rendering of experiment results.

    The bench harness prints paper-shaped rows (tables, bar charts, box
    plots, CDFs) to stdout; this module owns the formatting so every
    figure reproduction reports consistently. *)

val table : header:string list -> rows:string list list -> string
(** Render an aligned table with a header rule.  Rows shorter than the
    header are padded with empty cells. *)

val bar_chart :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** Horizontal bar chart scaled to the maximum value.  [width] is the
    maximum bar width in characters (default 40). *)

val grouped_bars :
  ?width:int ->
  series_names:string list ->
  (string * float list) list ->
  string
(** Several bars per category (e.g. Fig 7's two overhead series); each
    row is [category, values] aligned with [series_names]. *)

val box_plot_row : ?width:int -> lo:float -> hi:float -> Stats.box -> string
(** One ASCII box plot (|---[  |  ]---|) positioned on a log-ready
    numeric axis from [lo] to [hi]. *)

val cdf_plot :
  ?width:int -> ?height:int -> (string * (float * float) array) list -> string
(** Multi-series CDF rendered as a character grid; each series is a
    list of (x, fraction) points, fractions in [0, 1]. *)

val percent : float -> string
(** Format a percentage with adaptive precision, e.g. ["2.5%"],
    ["0.19%"]. *)

val section : string -> string
(** Banner used between figure reproductions. *)
