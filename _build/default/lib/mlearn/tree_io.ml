let to_text (t : Tree.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "xentry-tree v1\n";
  Buffer.add_string buf
    (Printf.sprintf "features %s\n"
       (String.concat "," (Array.to_list t.Tree.feature_names)));
  Buffer.add_string buf (Printf.sprintf "classes %d\n" t.Tree.n_classes);
  let rec emit node =
    match node with
    | Tree.Leaf { label; confidence; population } ->
        Buffer.add_string buf
          (Printf.sprintf "leaf %d %.17g %d\n" label confidence population)
    | Tree.Split { feature; threshold; low; high } ->
        Buffer.add_string buf
          (Printf.sprintf "split %d %.17g\n" feature threshold);
        emit low;
        emit high
  in
  emit t.Tree.root;
  Buffer.contents buf

exception Parse of string

let of_text text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | header :: features_line :: classes_line :: nodes -> (
      if String.trim header <> "xentry-tree v1" then
        failwith "Tree_io.of_text: bad header";
      let feature_names =
        match String.split_on_char ' ' features_line with
        | [ "features"; names ] ->
            Array.of_list (String.split_on_char ',' names)
        | _ -> failwith "Tree_io.of_text: bad features line"
      in
      let n_classes =
        match String.split_on_char ' ' classes_line with
        | [ "classes"; n ] -> int_of_string n
        | _ -> failwith "Tree_io.of_text: bad classes line"
      in
      let rest = ref nodes in
      let next () =
        match !rest with
        | [] -> raise (Parse "unexpected end of node list")
        | l :: tl ->
            rest := tl;
            String.split_on_char ' ' (String.trim l)
      in
      let rec parse_node () =
        match next () with
        | [ "leaf"; label; confidence; population ] ->
            Tree.Leaf
              {
                label = int_of_string label;
                confidence = float_of_string confidence;
                population = int_of_string population;
              }
        | [ "split"; feature; threshold ] ->
            let feature = int_of_string feature in
            let threshold = float_of_string threshold in
            let low = parse_node () in
            let high = parse_node () in
            Tree.Split { feature; threshold; low; high }
        | tokens -> raise (Parse ("bad node line: " ^ String.concat " " tokens))
      in
      try
        let root = parse_node () in
        if !rest <> [] then failwith "Tree_io.of_text: trailing node lines";
        Tree.of_parts ~root ~feature_names ~n_classes
      with Parse msg -> failwith ("Tree_io.of_text: " ^ msg))
  | _ -> failwith "Tree_io.of_text: truncated input"

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let to_c ?(function_name = "xentry_classify") (t : Tree.t) =
  let buf = Buffer.create 2048 in
  let nf = Array.length t.Tree.feature_names in
  Buffer.add_string buf
    (Printf.sprintf
       "/* Generated from a trained Xentry VM-transition detection tree.\n\
       \ * Features (index order): %s.\n\
       \ * Returns the class label (0 = correct execution, 1 = incorrect).\n\
       \ */\n"
       (String.concat ", " (Array.to_list t.Tree.feature_names)));
  Buffer.add_string buf
    (Printf.sprintf "int %s(const long long f[%d])\n{\n" (sanitize function_name)
       nf);
  let rec emit indent node =
    let pad = String.make indent ' ' in
    match node with
    | Tree.Leaf { label; _ } ->
        Buffer.add_string buf (Printf.sprintf "%sreturn %d;\n" pad label)
    | Tree.Split { feature; threshold; low; high } ->
        (* Counter values are integers, so [v <= t] for a midpoint
           threshold t is [v <= floor t] in integer arithmetic. *)
        Buffer.add_string buf
          (Printf.sprintf "%sif (f[%d] <= %LdLL) { /* %s */\n" pad feature
             (Int64.of_float (floor threshold))
             t.Tree.feature_names.(feature));
        emit (indent + 4) low;
        Buffer.add_string buf (Printf.sprintf "%s} else {\n" pad);
        emit (indent + 4) high;
        Buffer.add_string buf (Printf.sprintf "%s}\n" pad)
  in
  emit 4 t.Tree.root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
