type confusion = {
  true_positive : int;
  false_positive : int;
  true_negative : int;
  false_negative : int;
}

let confusion ~expected ~predicted =
  if Array.length expected <> Array.length predicted then
    invalid_arg "Metrics.confusion: length mismatch";
  let c = ref { true_positive = 0; false_positive = 0; true_negative = 0; false_negative = 0 } in
  Array.iteri
    (fun i e ->
      let p = predicted.(i) in
      if e < 0 || e > 1 || p < 0 || p > 1 then
        invalid_arg "Metrics.confusion: labels must be binary";
      c :=
        (match (e, p) with
        | 1, 1 -> { !c with true_positive = !c.true_positive + 1 }
        | 0, 1 -> { !c with false_positive = !c.false_positive + 1 }
        | 0, 0 -> { !c with true_negative = !c.true_negative + 1 }
        | _ -> { !c with false_negative = !c.false_negative + 1 }))
    expected;
  !c

let ratio a b = if a + b = 0 then 0.0 else float_of_int a /. float_of_int (a + b)

let accuracy c =
  ratio
    (c.true_positive + c.true_negative)
    (c.false_positive + c.false_negative)

let precision c = ratio c.true_positive c.false_positive
let recall c = ratio c.true_positive c.false_negative
let false_positive_rate c = ratio c.false_positive c.true_negative

let f1 c =
  let p = precision c and r = recall c in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

let evaluate_predict predict ds =
  let n = Dataset.length ds in
  let expected = Array.make n 0 and predicted = Array.make n 0 in
  for i = 0 to n - 1 do
    let s = Dataset.sample ds i in
    expected.(i) <- s.Dataset.label;
    predicted.(i) <- predict s.Dataset.features
  done;
  confusion ~expected ~predicted

let evaluate tree ds = evaluate_predict (Tree.predict tree) ds

let pp ppf c =
  Format.fprintf ppf "tp=%d fp=%d tn=%d fn=%d acc=%.3f fpr=%.4f" c.true_positive
    c.false_positive c.true_negative c.false_negative (accuracy c)
    (false_positive_rate c)
