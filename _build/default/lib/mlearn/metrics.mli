(** Classifier evaluation.

    The paper reports accuracy for both tree algorithms (random tree
    98.6% vs decision tree 96.1%) and a false-positive rate of 0.7%
    used in the recovery-overhead study (§VI).  Conventions here:
    class 1 ("incorrect execution") is the positive class, so a false
    positive is a correct execution flagged as faulty — the event that
    triggers an unnecessary recovery. *)

type confusion = {
  true_positive : int;
  false_positive : int;
  true_negative : int;
  false_negative : int;
}

val confusion : expected:int array -> predicted:int array -> confusion
(** Binary confusion matrix (labels other than 0/1 raise).  Arrays
    must have equal length. *)

val accuracy : confusion -> float
val precision : confusion -> float
val recall : confusion -> float
(** Detection coverage of actual incorrect executions. *)

val false_positive_rate : confusion -> float
(** FP / (FP + TN): fraction of correct executions misflagged. *)

val f1 : confusion -> float

val evaluate : Tree.t -> Dataset.t -> confusion
(** Run the tree over every sample. *)

val evaluate_predict : (float array -> int) -> Dataset.t -> confusion
(** Same for an arbitrary predictor (e.g. a forest). *)

val pp : Format.formatter -> confusion -> unit
