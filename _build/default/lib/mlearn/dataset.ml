type sample = { features : float array; label : int }

type t = {
  feature_names : string array;
  n_classes : int;
  data : sample array;
}

let create ~feature_names ~n_classes samples =
  if n_classes < 2 then invalid_arg "Dataset.create: need at least 2 classes";
  let arity = Array.length feature_names in
  List.iter
    (fun s ->
      if Array.length s.features <> arity then
        invalid_arg "Dataset.create: sample arity mismatch";
      if s.label < 0 || s.label >= n_classes then
        invalid_arg "Dataset.create: label out of range")
    samples;
  { feature_names; n_classes; data = Array.of_list samples }

let feature_names t = t.feature_names
let n_features t = Array.length t.feature_names
let n_classes t = t.n_classes
let length t = Array.length t.data
let sample t i = t.data.(i)
let samples t = t.data

let class_counts t =
  let counts = Array.make t.n_classes 0 in
  Array.iter (fun s -> counts.(s.label) <- counts.(s.label) + 1) t.data;
  counts

let entropy t =
  let n = float_of_int (length t) in
  if n = 0.0 then 0.0
  else
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. n in
          acc -. (p *. (log p /. log 2.0)))
      0.0 (class_counts t)

let with_data t data = { t with data }

let split_by_threshold t ~feature ~threshold =
  if feature < 0 || feature >= n_features t then
    invalid_arg "Dataset.split_by_threshold: bad feature index";
  let le, gt =
    Array.to_list t.data
    |> List.partition (fun s -> s.features.(feature) <= threshold)
  in
  (with_data t (Array.of_list le), with_data t (Array.of_list gt))

let subset t indices =
  with_data t (Array.map (fun i -> t.data.(i)) indices)

let train_test_split rng t ~train_fraction =
  if train_fraction < 0.0 || train_fraction > 1.0 then
    invalid_arg "Dataset.train_test_split: fraction out of [0, 1]";
  let order = Array.init (length t) (fun i -> i) in
  Xentry_util.Rng.shuffle rng order;
  let n_train =
    int_of_float (Float.round (train_fraction *. float_of_int (length t)))
  in
  ( subset t (Array.sub order 0 n_train),
    subset t (Array.sub order n_train (length t - n_train)) )

let append a b =
  if a.feature_names <> b.feature_names || a.n_classes <> b.n_classes then
    invalid_arg "Dataset.append: incompatible datasets";
  with_data a (Array.append a.data b.data)

let pp_summary ppf t =
  let counts = class_counts t in
  Format.fprintf ppf "%d samples, %d features, classes:" (length t)
    (n_features t);
  Array.iteri (fun c n -> Format.fprintf ppf " %d:%d" c n) counts
