(** Labelled datasets for classifier training and evaluation.

    A sample is a feature vector with an integer class label; for
    Xentry's VM-transition detection the features are the five of
    Table I and the labels are 0 = correct execution, 1 = incorrect
    (paper §III-B). *)

type sample = { features : float array; label : int }

type t

val create : feature_names:string array -> n_classes:int -> sample list -> t
(** Raises [Invalid_argument] when a sample's arity differs from the
    feature-name count or a label is outside \[0, n_classes). *)

val feature_names : t -> string array
val n_features : t -> int
val n_classes : t -> int
val length : t -> int
val sample : t -> int -> sample
val samples : t -> sample array
(** The backing array (do not mutate). *)

val class_counts : t -> int array
(** Occurrences of each label. *)

val entropy : t -> float
(** Shannon entropy (bits) of the label distribution — the paper's
    worked example: a 10/5 split of 15 samples has entropy
    [-(10/15)log2(10/15) - (5/15)log2(5/15)]. *)

val split_by_threshold : t -> feature:int -> threshold:float -> t * t
(** Partition into ([<= threshold], [> threshold]). *)

val subset : t -> int array -> t
(** Select samples by index (with repetition allowed — used for
    bootstrap bagging). *)

val train_test_split : Xentry_util.Rng.t -> t -> train_fraction:float -> t * t
(** Shuffled partition. *)

val append : t -> t -> t
(** Concatenate two compatible datasets. *)

val pp_summary : Format.formatter -> t -> unit
