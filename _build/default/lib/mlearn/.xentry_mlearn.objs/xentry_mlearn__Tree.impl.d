lib/mlearn/tree.ml: Array Dataset Format List Printf String Xentry_util
