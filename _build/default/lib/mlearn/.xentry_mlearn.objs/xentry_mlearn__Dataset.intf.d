lib/mlearn/dataset.mli: Format Xentry_util
