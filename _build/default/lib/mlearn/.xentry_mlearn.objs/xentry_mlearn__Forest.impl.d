lib/mlearn/forest.ml: Array Dataset Tree Xentry_util
