lib/mlearn/metrics.ml: Array Dataset Format Tree
