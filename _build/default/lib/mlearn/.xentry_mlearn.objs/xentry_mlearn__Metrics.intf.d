lib/mlearn/metrics.mli: Dataset Format Tree
