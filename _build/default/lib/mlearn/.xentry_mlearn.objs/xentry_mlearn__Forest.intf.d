lib/mlearn/forest.mli: Dataset Tree
