lib/mlearn/arff.mli: Dataset
