lib/mlearn/tree_io.mli: Tree
