lib/mlearn/dataset.ml: Array Float Format List Xentry_util
