lib/mlearn/arff.ml: Array Buffer Dataset Fun List Printf String
