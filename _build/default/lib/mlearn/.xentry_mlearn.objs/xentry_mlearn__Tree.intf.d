lib/mlearn/tree.mli: Dataset Format
