lib/mlearn/tree_io.ml: Array Buffer Int64 List Printf String Tree
