open Xentry_isa
open Xentry_vmm

type kind = Boundary | Condition

type info = { id : int; name : string; kind : kind; reason : Exit_reason.t }

type t = { by_id : (int, info) Hashtbl.t }

let kind_of_assert_kind = function
  | Instr.Assert_range _ | Instr.Assert_aligned _ -> Boundary
  | Instr.Assert_nonzero | Instr.Assert_zero | Instr.Assert_equals _ ->
      Condition

let build () =
  let by_id = Hashtbl.create 128 in
  Array.iter
    (fun (reason, program) ->
      Array.iter
        (fun instr ->
          match instr with
          | Instr.Assert a ->
              Hashtbl.replace by_id a.Instr.assert_id
                {
                  id = a.Instr.assert_id;
                  name = a.Instr.assert_name;
                  kind = kind_of_assert_kind a.Instr.assert_kind;
                  reason;
                }
          | _ -> ())
        program.Program.code)
    (Handlers.all_programs ());
  { by_id }

let count t = Hashtbl.length t.by_id
let find t id = Hashtbl.find_opt t.by_id id

let all t =
  Hashtbl.fold (fun _ info acc -> info :: acc) t.by_id []
  |> List.sort (fun a b -> compare a.id b.id)

let count_by_kind t kind =
  Hashtbl.fold (fun _ i acc -> if i.kind = kind then acc + 1 else acc) t.by_id 0

let assertions_in t reason =
  all t |> List.filter (fun i -> i.reason = reason)

let pp_kind ppf = function
  | Boundary -> Format.pp_print_string ppf "boundary"
  | Condition -> Format.pp_print_string ppf "condition"
