(** VM transition detection (paper §III-B).

    At every VM entry, after the original hypervisor execution
    relinquishes control, Xentry reads the performance counters,
    assembles the Table I feature vector and runs the trained
    classifier.  An "incorrect" verdict means the finished execution's
    dynamic signature does not match any fault-free signature for its
    exit reason — valid-but-wrong control flow caught before the guest
    resumes. *)

type classifier =
  | Single_tree of Xentry_mlearn.Tree.t  (** the paper's deployment *)
  | Ensemble of Xentry_mlearn.Forest.t  (** future-work extension *)
  | Thresholded of Xentry_mlearn.Tree.t * float
      (** flag incorrect when the leaf's class frequencies put
          P(incorrect) at or above the threshold — a
          coverage / false-positive trade-off knob *)

type t

val create : classifier -> t

val of_tree : Xentry_mlearn.Tree.t -> t

val with_threshold :
  Xentry_mlearn.Tree.t -> min_incorrect_probability:float -> t
(** Thresholded detector; 0.5 behaves like the plain tree.  Raises
    [Invalid_argument] outside \[0, 1\]. *)

type verdict = Correct | Incorrect

val classify :
  t ->
  reason:Xentry_vmm.Exit_reason.t ->
  Xentry_machine.Pmu.snapshot ->
  verdict * int
(** (verdict, integer comparisons performed) — the comparison count is
    the detection's per-VM-entry cost. *)

val classify_features : t -> float array -> verdict * int

val worst_case_comparisons : t -> int

val classifier : t -> classifier

val pp_verdict : Format.formatter -> verdict -> unit
