type params = {
  copy_ns : float;
  false_positive_rate : float;
  cpu_ghz : float;
  instructions_per_cycle : float;
}

let default_params =
  {
    copy_ns = 1_900.0;
    false_positive_rate = 0.007;
    cpu_ghz = 2.13;
    instructions_per_cycle = 1.0;
  }

type series = { avg : float; min : float; max : float }

let overhead p profile ~mean_handler_instructions rng ~trials =
  let rate = Xentry_workload.Profile.trace_rate profile in
  let exits = int_of_float rate in
  let copy_seconds = float_of_int exits *. p.copy_ns *. 1e-9 in
  let reexec_seconds =
    mean_handler_instructions /. p.instructions_per_cycle
    /. (p.cpu_ghz *. 1e9)
  in
  let results =
    Array.init trials (fun _ ->
        (* Binomial draw of false positives across the trace (normal
           approximation is avoided to keep the tails honest at small
           counts). *)
        let fp = ref 0 in
        for _ = 1 to exits do
          if Xentry_util.Rng.bernoulli rng p.false_positive_rate then incr fp
        done;
        copy_seconds +. (float_of_int !fp *. reexec_seconds))
  in
  {
    avg = Xentry_util.Stats.mean results;
    min = Xentry_util.Stats.minimum results;
    max = Xentry_util.Stats.maximum results;
  }

let fig11 ?(params = default_params) ?(trials = 100) ~seed () =
  let rng = Xentry_util.Rng.create seed in
  Array.to_list Xentry_workload.Profile.all_benchmarks
  |> List.map (fun bench ->
         let profile = Xentry_workload.Profile.get bench in
         let mean_handler_instructions =
           Xentry_workload.Profile.mean_handler_length profile
             Xentry_workload.Profile.PV
         in
         ( Xentry_workload.Profile.benchmark_name bench,
           overhead params profile ~mean_handler_instructions
             (Xentry_util.Rng.split rng) ~trials ))
