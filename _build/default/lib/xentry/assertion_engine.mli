(** The software-assertion side of runtime detection (paper §III-A).

    Xentry's assertions are the debug predicates already present in
    the hypervisor source, promoted to always-on checks: boundary
    assertions on values with defined ranges (Listing 1) and condition
    assertions on states critical to correct execution (Listing 2).
    This module indexes every assertion compiled into the synthesized
    handlers so detections can be attributed and the assertion budget
    (coverage vs. cost) analyzed. *)

type kind =
  | Boundary  (** Listing 1: value within a defined range *)
  | Condition  (** Listing 2: a critical state predicate *)

type info = {
  id : int;
  name : string;
  kind : kind;
  reason : Xentry_vmm.Exit_reason.t;  (** handler containing it *)
}

type t

val build : unit -> t
(** Scan all synthesized handler programs for [Assert] instructions. *)

val count : t -> int
val find : t -> int -> info option
val all : t -> info list

val count_by_kind : t -> kind -> int

val assertions_in : t -> Xentry_vmm.Exit_reason.t -> info list

val kind_of_assert_kind : Xentry_isa.Instr.assert_kind -> kind
(** Range/alignment checks are [Boundary]; equality/zero checks are
    [Condition]. *)

val pp_kind : Format.formatter -> kind -> unit
