(** The five VM-transition detection features (paper Table I).

    Xentry characterizes each hypervisor execution by its VM exit
    reason plus four performance-counter readings collected between VM
    exit and VM entry.  The features deliberately do not represent
    control flow explicitly; they capture its dynamic signature
    through instruction and memory-access patterns. *)

val names : string array
(** [|"VMER"; "RT"; "BR"; "RM"; "WM"|] — the paper's synonyms. *)

val count : int
(** 5. *)

val descriptions : (string * string * string) list
(** Table I rows: (synonym, feature description, H/W-S/W support). *)

val of_run :
  reason:Xentry_vmm.Exit_reason.t -> Xentry_machine.Pmu.snapshot -> float array
(** Assemble the feature vector for one completed hypervisor
    execution. *)

val label_correct : int
(** Dataset label for correct executions (0). *)

val label_incorrect : int
(** Dataset label for incorrect executions (1). *)

val dataset_of_samples :
  (float array * int) list -> Xentry_mlearn.Dataset.t
(** Wrap feature/label pairs into a dataset with the Table I feature
    names. *)

val pp_table1 : Format.formatter -> unit -> unit
(** Render Table I. *)
