type params = {
  cpu_ghz : float;
  pmu_program_cycles : int;
  pmu_read_cycles : int;
  tree_comparison_cycles : int;
  assertion_cycles : int;
  assertions_per_exit : float;
}

let default_params =
  {
    cpu_ghz = 2.13;
    pmu_program_cycles = 180;
    pmu_read_cycles = 280;
    tree_comparison_cycles = 8;
    assertion_cycles = 4;
    assertions_per_exit = 3.0;
  }

let per_exit_seconds p (config : Framework.config) ~tree_comparisons =
  let cycles = ref 0.0 in
  if config.Framework.sw_assertions then
    cycles :=
      !cycles +. (p.assertions_per_exit *. float_of_int p.assertion_cycles);
  if config.Framework.vm_transition then
    cycles :=
      !cycles
      +. float_of_int p.pmu_program_cycles
      +. float_of_int p.pmu_read_cycles
      +. float_of_int (tree_comparisons * p.tree_comparison_cycles);
  (* Parsing fatal hardware exceptions costs nothing on the fault-free
     path: the filter only runs when an exception fires. *)
  !cycles /. (p.cpu_ghz *. 1e9)

(* The paper's measured overheads exceed the pure instruction cost of
   detection on I/O-intensive workloads (postmark's 2.5% average and
   11.7% maximum cannot come from ~600 cycles per exit alone): the
   detection code competes with the guest for cache and TLB capacity.
   That microarchitectural interference is folded into a per-benchmark
   multiplier on the per-exit cost. *)
let interference profile =
  match Xentry_workload.Profile.benchmark profile with
  | Xentry_workload.Profile.Postmark -> 2.2
  | Xentry_workload.Profile.X264 -> 1.8
  | Xentry_workload.Profile.Freqmine -> 1.3
  | Xentry_workload.Profile.Canneal -> 1.0
  | Xentry_workload.Profile.Mcf -> 1.0
  | Xentry_workload.Profile.Bzip2 -> 0.9

type series = { avg : float; max : float }

let overhead p config ~tree_comparisons profile rng ~runs ~seconds_per_run =
  let per_exit =
    per_exit_seconds p config ~tree_comparisons *. interference profile
  in
  let run_overheads =
    Array.init runs (fun _ ->
        let total_rate = ref 0.0 in
        for _ = 1 to seconds_per_run do
          total_rate :=
            !total_rate +. Xentry_workload.Profile.sample_physical_rate profile rng
        done;
        let mean_rate = !total_rate /. float_of_int seconds_per_run in
        mean_rate *. per_exit)
  in
  {
    avg = Xentry_util.Stats.mean run_overheads;
    max = Xentry_util.Stats.maximum run_overheads;
  }

let fig7 ?(params = default_params) ?(runs = 10) ~tree_comparisons ~seed () =
  let rng = Xentry_util.Rng.create seed in
  Array.to_list Xentry_workload.Profile.all_benchmarks
  |> List.map (fun bench ->
         let profile = Xentry_workload.Profile.get bench in
         (* Short measurement windows keep the burstiness of the
            activation rate visible in the per-run maxima, as in the
            paper's run-to-run spread. *)
         let runtime =
           overhead params Framework.runtime_only ~tree_comparisons profile
             (Xentry_util.Rng.split rng) ~runs ~seconds_per_run:3
         in
         let full =
           overhead params Framework.full_config ~tree_comparisons profile
             (Xentry_util.Rng.split rng) ~runs ~seconds_per_run:3
         in
         (Xentry_workload.Profile.benchmark_name bench, runtime, full))
