let names = [| "VMER"; "RT"; "BR"; "RM"; "WM" |]
let count = Array.length names

let descriptions =
  [
    ("VMER", "VM exit reason", "Xentry");
    ("RT", "# of committed instructions", "INST_RETIRED");
    ("BR", "# of branch instructions", "BR_INST_RETIRED");
    ("RM", "# of read memory access", "MEM_INST_RETIRED.LOADS");
    ("WM", "# of write memory access", "MEM_INST_RETIRED.STORES");
  ]

let of_run ~reason (snapshot : Xentry_machine.Pmu.snapshot) =
  [|
    float_of_int (Xentry_vmm.Exit_reason.to_id reason);
    float_of_int snapshot.Xentry_machine.Pmu.inst;
    float_of_int snapshot.Xentry_machine.Pmu.branches;
    float_of_int snapshot.Xentry_machine.Pmu.loads;
    float_of_int snapshot.Xentry_machine.Pmu.stores;
  |]

let label_correct = 0
let label_incorrect = 1

let dataset_of_samples pairs =
  Xentry_mlearn.Dataset.create ~feature_names:names ~n_classes:2
    (List.map
       (fun (features, label) -> { Xentry_mlearn.Dataset.features; label })
       pairs)

let pp_table1 ppf () =
  Format.fprintf ppf "%s"
    (Xentry_util.Report.table
       ~header:[ "Features"; "H/W & S/W Support"; "Synonyms" ]
       ~rows:
         (List.map
            (fun (syn, desc, support) -> [ desc; support; syn ])
            descriptions))
