open Xentry_machine
open Xentry_vmm

type region = { addr : int64; data : Bytes.t }

type checkpoint = { regions : region list; tsc : int64 }

(* Every region a handler may write.  Guest input buffers are read-only
   to handlers and need no saving. *)
let writable_regions host =
  let ndoms = Array.length (Hypervisor.domains host) in
  List.concat
    [
      List.init ndoms (fun d -> (Layout.dom_base d, 0x10000));
      [
        (Layout.hv_global_base, 4096);
        (Layout.irq_desc_base, 4096);
        (Layout.time_area_base, 4096);
        (Layout.request_base, 4096);
        (Layout.tasklet_pool_base, 4096);
        (Layout.bounce_buffer, 0x8000);
        (Layout.pt_root_base, 3 * 4096);
        (Layout.hv_stack_base, Layout.hv_stack_size);
      ];
    ]

let checkpoint host =
  let mem = Hypervisor.memory host in
  {
    regions =
      List.map
        (fun (addr, len) -> { addr; data = Memory.blit_out mem ~addr ~len })
        (writable_regions host);
    tsc = Cpu.get_tsc (Hypervisor.cpu host);
  }

let checkpoint_bytes t =
  List.fold_left (fun acc r -> acc + Bytes.length r.data) 0 t.regions

let restore host t =
  let mem = Hypervisor.memory host in
  List.iter
    (fun { addr; data } ->
      Bytes.iteri
        (fun i byte ->
          Memory.store8 mem (Int64.add addr (Int64.of_int i)) (Char.code byte))
        data)
    t.regions;
  Cpu.set_tsc (Hypervisor.cpu host) t.tsc

let recover host t ?fuel req =
  restore host t;
  Hypervisor.execute host ?fuel req
