(** False-positive recovery overhead model (paper §VI, Fig 11).

    The paper assumes a lightweight recovery that snapshots critical
    hypervisor data (VCPU/domain structures, VM exit reason) at every
    VM exit — measured at about 1,900 ns on the Xeon E5506 — and, on a
    positive detection (true or false), restores the snapshot and
    re-executes the hypervisor execution, roughly doubling its time.
    With the classifier's 0.7% false-positive rate, this estimates the
    overhead a false alarm imposes on fault-free runs.  The paper
    repeats the random selection of false-positive executions 100
    times per application. *)

type params = {
  copy_ns : float;  (** per-exit state copy (1,900 ns in the paper) *)
  false_positive_rate : float;  (** 0.7% from §III-B *)
  cpu_ghz : float;
  instructions_per_cycle : float;  (** to price a re-execution *)
}

val default_params : params

type series = { avg : float; min : float; max : float }

val overhead :
  params ->
  Xentry_workload.Profile.t ->
  mean_handler_instructions:float ->
  Xentry_util.Rng.t ->
  trials:int ->
  series
(** One trial replays one second of the recorded trace: every exit
    pays the copy; each exit is independently a false positive with
    the configured rate, paying a re-execution.  Returns the overhead
    fraction over [trials] repetitions (100 in the paper). *)

val fig11 :
  ?params:params -> ?trials:int -> seed:int -> unit -> (string * series) list
(** Per benchmark recovery overhead with false positives. *)
