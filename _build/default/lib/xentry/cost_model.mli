(** Fault-free performance overhead model (paper Fig 7).

    Xentry's fault-free cost per hypervisor execution is: programming
    the performance counters at VM exit, reading them at VM entry,
    traversing the decision tree, plus the inline software assertions.
    Composed with a workload's activation rate on the measurement host
    (Xeon E5506 at 2.13 GHz) this yields the application-visible
    overhead.  Absolute magnitudes are a calibrated model — the
    reproduction target is the Fig 7 shape: postmark worst (maximum
    near 11.7%), mcf/bzip2/freqmine/canneal under ~1%, runtime-only
    detection nearly free. *)

type params = {
  cpu_ghz : float;  (** 2.13 — Xeon E5506 *)
  pmu_program_cycles : int;  (** arm 4 counters at VM exit *)
  pmu_read_cycles : int;  (** read 4 counters at VM entry *)
  tree_comparison_cycles : int;  (** per decision-tree node *)
  assertion_cycles : int;  (** per executed assertion *)
  assertions_per_exit : float;  (** mean assertions on a handler path *)
}

val default_params : params

val per_exit_seconds :
  params -> Framework.config -> tree_comparisons:int -> float
(** Detection time added to one hypervisor execution under a
    configuration (0 when everything is disabled). *)

val interference : Xentry_workload.Profile.t -> float
(** Per-benchmark cache/TLB interference multiplier applied to the
    per-exit detection cost: the paper's measured overheads on
    I/O-intensive workloads exceed the pure instruction cost, and the
    residual is attributed to microarchitectural contention. *)

type series = { avg : float; max : float }
(** Overhead fractions over repeated runs (Fig 7 reports both). *)

val overhead :
  params ->
  Framework.config ->
  tree_comparisons:int ->
  Xentry_workload.Profile.t ->
  Xentry_util.Rng.t ->
  runs:int ->
  seconds_per_run:int ->
  series
(** Model the paper's measurement: [runs] executions of the benchmark
    (10 in the paper), each observing the physical host's activation
    rate for a window of seconds; overhead of a run = mean rate x
    per-exit cost. *)

val fig7 :
  ?params:params ->
  ?runs:int ->
  tree_comparisons:int ->
  seed:int ->
  unit ->
  (string * series * series) list
(** Per benchmark: (name, runtime-detection-only overhead,
    runtime + VM transition overhead) — the two Fig 7 series. *)
