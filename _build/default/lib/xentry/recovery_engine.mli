(** Lightweight recovery by checkpoint and re-execution.

    The paper designs detection and leaves recovery as future work,
    but sketches the mechanism (§VI): keep a redundant copy of the
    critical hypervisor data and the VM exit reason at every VM exit
    (~1,900 ns on the Xeon E5506), and on a positive detection —
    true or false — restore the copy and re-execute the hypervisor
    execution, roughly doubling its time.  Soft errors are transient,
    so the re-execution is fault-free.

    This module implements that mechanism on the simulated host: a
    checkpoint captures every region a handler may write (domain
    blocks, hypervisor globals, IRQ descriptors, time area, tasklet
    pool, bounce buffer, page tables, the hypervisor stack) plus the
    TSC, restore rolls them back, and {!recover} re-executes the
    request.  Because detection always fires before VM entry, a
    recovered execution is architecturally identical to a fault-free
    one — the property the recovery study (bench `recovery`)
    verifies. *)

type checkpoint

val checkpoint : Xentry_vmm.Hypervisor.t -> checkpoint
(** Snapshot the critical state (call after {!Xentry_vmm.Hypervisor.prepare},
    i.e. at the VM exit boundary). *)

val checkpoint_bytes : checkpoint -> int
(** Size of the saved state (the cost driver behind the paper's
    1,900 ns estimate). *)

val restore : Xentry_vmm.Hypervisor.t -> checkpoint -> unit
(** Roll the host back to the checkpoint (memory regions and TSC). *)

val recover :
  Xentry_vmm.Hypervisor.t ->
  checkpoint ->
  ?fuel:int ->
  Xentry_vmm.Request.t ->
  Xentry_machine.Cpu.run_result
(** [restore] + re-execute the request's handler.  The transient fault
    is gone, so the result is a fault-free execution from the restored
    state. *)
