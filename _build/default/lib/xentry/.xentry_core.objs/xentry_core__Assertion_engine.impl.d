lib/xentry/assertion_engine.ml: Array Exit_reason Format Handlers Hashtbl Instr List Program Xentry_isa Xentry_vmm
