lib/xentry/recovery_engine.ml: Array Bytes Char Cpu Hypervisor Int64 Layout List Memory Xentry_machine Xentry_vmm
