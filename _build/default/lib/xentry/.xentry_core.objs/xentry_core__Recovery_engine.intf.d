lib/xentry/recovery_engine.mli: Xentry_machine Xentry_vmm
