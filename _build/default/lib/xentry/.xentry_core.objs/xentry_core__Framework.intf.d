lib/xentry/framework.mli: Format Transition_detector Xentry_machine Xentry_vmm
