lib/xentry/recovery.ml: Array List Xentry_util Xentry_workload
