lib/xentry/cost_model.ml: Array Framework List Xentry_util Xentry_workload
