lib/xentry/framework.ml: Cpu Exception_filter Format Printf Transition_detector Xentry_machine
