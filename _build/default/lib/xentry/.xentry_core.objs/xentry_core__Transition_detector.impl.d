lib/xentry/transition_detector.ml: Array Features Forest Format Tree Xentry_mlearn
