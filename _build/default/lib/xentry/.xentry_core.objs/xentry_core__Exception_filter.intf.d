lib/xentry/exception_filter.mli: Format Xentry_machine
