lib/xentry/exception_filter.ml: Array Format Hw_exception List Xentry_machine
