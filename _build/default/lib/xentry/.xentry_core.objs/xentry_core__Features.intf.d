lib/xentry/features.mli: Format Xentry_machine Xentry_mlearn Xentry_vmm
