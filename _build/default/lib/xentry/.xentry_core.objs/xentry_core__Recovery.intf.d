lib/xentry/recovery.mli: Xentry_util Xentry_workload
