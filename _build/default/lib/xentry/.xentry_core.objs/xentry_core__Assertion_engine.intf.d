lib/xentry/assertion_engine.mli: Format Xentry_isa Xentry_vmm
