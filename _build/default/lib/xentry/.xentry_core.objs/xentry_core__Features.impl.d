lib/xentry/features.ml: Array Format List Xentry_machine Xentry_mlearn Xentry_util Xentry_vmm
