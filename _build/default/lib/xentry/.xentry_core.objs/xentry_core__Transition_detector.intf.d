lib/xentry/transition_detector.mli: Format Xentry_machine Xentry_mlearn Xentry_vmm
