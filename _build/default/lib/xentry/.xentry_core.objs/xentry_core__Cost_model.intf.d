lib/xentry/cost_model.mli: Framework Xentry_util Xentry_workload
