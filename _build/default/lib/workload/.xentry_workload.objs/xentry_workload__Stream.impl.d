lib/workload/stream.ml: Array List Profile Rng Xentry_util
