lib/workload/profile.ml: Array Exit_reason Float Handlers Hashtbl Hypercall Hypervisor Int64 List Request Rng Xentry_machine Xentry_util Xentry_vmm
