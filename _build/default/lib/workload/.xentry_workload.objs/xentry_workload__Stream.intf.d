lib/workload/stream.mli: Profile Xentry_util Xentry_vmm
