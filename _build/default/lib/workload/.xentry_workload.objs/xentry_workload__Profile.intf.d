lib/workload/profile.mli: Xentry_util Xentry_vmm
