(** Benchmark workload profiles.

    The paper exercises the hypervisor with six benchmarks chosen to
    stress different subsystems (§V-A): postmark, freqmine and x264
    for I/O, canneal and bzip2 for CPU, mcf for memory.  A profile
    models how a benchmark drives the hypervisor: its activation
    frequency distribution (Fig 3's box plots, per virtualization
    mode), its mix of VM-exit reasons, and the share of CPU time spent
    in the hypervisor (used by the overhead studies of Figs 7 and
    11). *)

type benchmark = Mcf | Bzip2 | Freqmine | Canneal | X264 | Postmark

type virt_mode = PV | HVM

type workload_class = Cpu_bound | Memory_bound | Io_bound

type t

val all_benchmarks : benchmark array
(** In the paper's Fig 3 order: mcf, bzip2, freqmine, canneal, x264,
    postmark. *)

val benchmark_name : benchmark -> string
val mode_name : virt_mode -> string

val get : benchmark -> t
val benchmark : t -> benchmark
val workload_class : t -> workload_class

val hypervisor_cpu_share : t -> float
(** Fraction of CPU time spent in hypervisor context while this
    benchmark runs (feeds the recovery-overhead estimate, §VI). *)

val sample_activation_rate : t -> virt_mode -> Xentry_util.Rng.t -> float
(** One observed per-second hypervisor activation count.  PV rates
    fall in the paper's 5,000–100,000/s band (freqmine peaking toward
    650,000/s); HVM rates mostly within 2,000–10,000/s. *)

val sample_request : t -> virt_mode -> Xentry_util.Rng.t -> Xentry_vmm.Request.t
(** Draw one VM-exit request from the benchmark's reason mix, with
    arguments valid for fault-free execution (error paths are reached
    only through fault injection, matching the paper's setup where
    benchmarks run correctly unless a fault intervenes). *)

val reason_mix : t -> virt_mode -> (string * float) list
(** Category weights (irq/apic/softirq/tasklet/exception/hypercall)
    for reporting. *)

val mean_handler_length : t -> virt_mode -> float
(** Expected dynamic instructions per hypervisor execution under this
    profile (used by the fault-free overhead model). *)

val sample_physical_rate : t -> Xentry_util.Rng.t -> float
(** One observed per-second activation count on the paper's physical
    measurement host (Xeon E5506, 4 VMs).  These bands are lower than
    the {!sample_activation_rate} simulator bands and drive the
    overhead studies (Fig 7's measured runtimes, Fig 11's traces). *)

val trace_rate : t -> float
(** The fixed per-second activation rate of the recorded hypervisor
    execution trace used in the recovery study (§VI): the physical
    band's median. *)
