open Xentry_util

type t = {
  profile : Profile.t;
  mode : Profile.virt_mode;
  rng : Rng.t;
}

let create profile mode rng = { profile; mode; rng }

let profile t = t.profile
let mode t = t.mode

let next_request t = Profile.sample_request t.profile t.mode t.rng

let next_second t ~max_events =
  let rate = Profile.sample_activation_rate t.profile t.mode t.rng in
  let n = min max_events (int_of_float rate) in
  (rate, List.init n (fun _ -> next_request t))

let activation_rates t ~seconds =
  Array.init seconds (fun _ ->
      Profile.sample_activation_rate t.profile t.mode t.rng)
