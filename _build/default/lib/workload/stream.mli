(** Activation streams: timed sequences of VM exits.

    Turns a {!Profile} into the event stream a running benchmark
    induces: per-second activation counts (Fig 3's measurements) and
    the corresponding requests.  Streams are deterministic given the
    RNG. *)

type t

val create :
  Profile.t -> Profile.virt_mode -> Xentry_util.Rng.t -> t

val profile : t -> Profile.t
val mode : t -> Profile.virt_mode

val next_request : t -> Xentry_vmm.Request.t
(** The next VM exit in the stream. *)

val next_second : t -> max_events:int -> float * Xentry_vmm.Request.t list
(** Simulate one second of wall-clock: returns the drawn activation
    rate and up to [max_events] of its requests (the full count is the
    returned rate; generating hundreds of thousands of request values
    per second would be wasteful when callers only execute a
    sample). *)

val activation_rates : t -> seconds:int -> float array
(** Per-second activation frequencies over a measurement window —
    the raw data behind one Fig 3 box. *)
