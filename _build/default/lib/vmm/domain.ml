open Xentry_machine

type t = { id : int; is_control : bool; mem : Memory.t }

let base t = Layout.dom_base t.id

let init mem ~id ~is_control =
  let t = { id; is_control; mem } in
  let dom = Layout.dom_struct id in
  Memory.store64 mem (Int64.add dom Layout.dom_id_field) (Int64.of_int id);
  Memory.store64 mem
    (Int64.add dom Layout.dom_is_control)
    (if is_control then 1L else 0L);
  Memory.store64 mem (Int64.add dom Layout.dom_state) 1L (* running *);
  (* Empty pending-trap slots are -1. *)
  for v = 0 to Layout.vcpus_per_domain - 1 do
    let area = Layout.vcpu_area ~dom:id ~vcpu:v in
    for slot = 0 to Layout.vcpu_trap_slots - 1 do
      Memory.store64 mem
        (Int64.add area (Int64.add Layout.vcpu_pending_traps (Int64.of_int (slot * 8))))
        (-1L)
    done
  done;
  t

let user_regs_address t ~vcpu =
  Int64.add (Layout.vcpu_area ~dom:t.id ~vcpu) Layout.vcpu_user_regs

let reg_slot t ~vcpu g =
  Int64.add (user_regs_address t ~vcpu)
    (Int64.of_int (Xentry_isa.Reg.gpr_index g * 8))

let get_user_reg t ~vcpu g = Memory.load64 t.mem (reg_slot t ~vcpu g)
let set_user_reg t ~vcpu g v = Memory.store64 t.mem (reg_slot t ~vcpu g) v

let get_user_rip t ~vcpu =
  Memory.load64 t.mem
    (Int64.add (Layout.vcpu_area ~dom:t.id ~vcpu) Layout.vcpu_user_rip)

let set_user_rip t ~vcpu v =
  Memory.store64 t.mem
    (Int64.add (Layout.vcpu_area ~dom:t.id ~vcpu) Layout.vcpu_user_rip)
    v

let flag_addr t ~vcpu off = Int64.add (Layout.vcpu_area ~dom:t.id ~vcpu) off

let set_idle t ~vcpu b =
  Memory.store64 t.mem (flag_addr t ~vcpu Layout.vcpu_is_idle)
    (if b then 1L else 0L)

let is_idle t ~vcpu =
  Memory.load64 t.mem (flag_addr t ~vcpu Layout.vcpu_is_idle) = 1L

let set_running t ~vcpu b =
  Memory.store64 t.mem (flag_addr t ~vcpu Layout.vcpu_running)
    (if b then 1L else 0L)

let is_running t ~vcpu =
  Memory.load64 t.mem (flag_addr t ~vcpu Layout.vcpu_running) = 1L

let trap_addr t ~vcpu slot =
  if slot < 0 || slot >= Layout.vcpu_trap_slots then
    invalid_arg "Domain: trap slot out of range";
  Int64.add
    (flag_addr t ~vcpu Layout.vcpu_pending_traps)
    (Int64.of_int (slot * 8))

let clear_pending_traps t ~vcpu =
  for slot = 0 to Layout.vcpu_trap_slots - 1 do
    Memory.store64 t.mem (trap_addr t ~vcpu slot) (-1L)
  done

let set_pending_trap t ~vcpu ~slot ~trap =
  Memory.store64 t.mem (trap_addr t ~vcpu slot) (Int64.of_int trap)

let pending_trap t ~vcpu ~slot = Memory.load64 t.mem (trap_addr t ~vcpu slot)

let vcpu_info_addr t ~vcpu off =
  Int64.add (Layout.vcpu_info ~dom:t.id ~vcpu) off

let upcall_pending t ~vcpu =
  Memory.load64 t.mem (vcpu_info_addr t ~vcpu Layout.vi_upcall_pending) <> 0L

let set_upcall_pending t ~vcpu b =
  Memory.store64 t.mem
    (vcpu_info_addr t ~vcpu Layout.vi_upcall_pending)
    (if b then 1L else 0L)

let vcpu_system_time t ~vcpu =
  Memory.load64 t.mem (vcpu_info_addr t ~vcpu Layout.vi_system_time)

type region = { region_name : string; addr : int64; len : int }

let guest_visible_regions t =
  let regions = ref [] in
  for v = Layout.vcpus_per_domain - 1 downto 0 do
    regions :=
      {
        region_name = Printf.sprintf "dom%d/vcpu%d/user_regs" t.id v;
        addr = Layout.vcpu_area ~dom:t.id ~vcpu:v;
        len = 0x90;
      }
      :: {
           region_name = Printf.sprintf "dom%d/vcpu%d/pending_traps" t.id v;
           addr =
             Int64.add (Layout.vcpu_area ~dom:t.id ~vcpu:v) Layout.vcpu_pending_traps;
           len = Layout.vcpu_trap_slots * 8;
         }
      :: !regions
  done;
  {
    region_name = Printf.sprintf "dom%d/shared_info" t.id;
    addr = Layout.shared_info t.id;
    len = 0x200;
  }
  :: {
       region_name = Printf.sprintf "dom%d/evtchn_table" t.id;
       addr = Layout.evtchn_entry ~dom:t.id ~port:0;
       len = Layout.evtchn_ports * 16;
     }
  :: {
       region_name = Printf.sprintf "dom%d/grant_table" t.id;
       addr = Layout.grant_entry ~dom:t.id 0;
       len = Layout.grant_entries * 16;
     }
  :: !regions

let pp ppf t =
  Format.fprintf ppf "dom%d%s" t.id (if t.is_control then " (control)" else "")
