let code_base = 0x0010_0000L
let hv_stack_base = 0x0020_0000L
let hv_stack_size = 16 * 1024
let hv_global_base = 0x0030_0000L
let irq_desc_base = 0x0031_0000L
let time_area_base = 0x0032_0000L
let request_base = 0x0034_0000L
let tasklet_pool_base = 0x0035_0000L
let scratch_base = 0x0040_0000L
let pt_root_base = 0x0050_0000L

let ( ++ ) = Int64.add
let off n = Int64.of_int n

let stack_top ~cpu =
  (* Leave one word of headroom below the next stack. *)
  hv_stack_base ++ off (((cpu + 1) * hv_stack_size) - 8)

(* Hypervisor globals *)
let global_current_vcpu = hv_global_base ++ 0x00L
let global_runqueue_head = hv_global_base ++ 0x08L
let global_softirq_pending = hv_global_base ++ 0x10L
let global_tasklet_head = hv_global_base ++ 0x18L
let global_jiffies = hv_global_base ++ 0x20L
let global_current_dom = hv_global_base ++ 0x28L

(* IRQ descriptors *)
let irq_desc line = irq_desc_base ++ off (line * 32)
let irq_desc_status = 0L
let irq_desc_action = 8L
let irq_desc_count = 16L
let irq_desc_port = 24L

(* Time area *)
let time_tsc_mul = time_area_base ++ 0x00L
let time_tsc_shift = time_area_base ++ 0x08L
let time_last_tsc = time_area_base ++ 0x10L
let time_system_time = time_area_base ++ 0x18L
let time_wall_sec = time_area_base ++ 0x20L
let time_wall_nsec = time_area_base ++ 0x28L
let time_deadline = time_area_base ++ 0x30L
let tsc_mul_value = 2_863_311_531L (* ~ (2/3) * 2^32 *)
let tsc_shift_value = 32

let scale_tsc tsc =
  Int64.shift_right_logical (Int64.mul tsc tsc_mul_value) tsc_shift_value

(* Request page *)
let request_arg i =
  if i < 0 || i > 7 then invalid_arg "Layout.request_arg";
  request_base ++ off (i * 8)

(* Tasklets *)
let tasklet_pool_nodes = 64
let tasklet_node i =
  if i < 0 || i >= tasklet_pool_nodes then invalid_arg "Layout.tasklet_node";
  tasklet_pool_base ++ off (i * 32)

let tasklet_fn = 0L
let tasklet_data = 8L
let tasklet_next = 16L
let tasklet_done = 24L

(* Scratch buffers.  Only the buffers themselves are mapped (4 pages of
   guest buffer, 8 of bounce buffer): hosts are cloned for every fault
   injection, so the mapped set is kept minimal, and a corrupted copy
   count walks off the buffer into unmapped space quickly. *)
let guest_buffer = scratch_base
let bounce_buffer = scratch_base ++ 0x40000L
let buffer_words = 2048

(* Page tables: three levels, one page of 512 entries each level. *)
let pt_level_base = function
  | 3 -> pt_root_base
  | 2 -> pt_root_base ++ 0x1000L
  | 1 -> pt_root_base ++ 0x2000L
  | _ -> invalid_arg "Layout.pt_level_base: level must be 1, 2 or 3"

let pte_present = 1L
let pte_accessed = 0x20L

(* Per-domain block *)
let max_domains = 8
let vcpus_per_domain = 1

let dom_base d =
  if d < 0 || d >= max_domains then invalid_arg "Layout.dom_base";
  0x1000_0000L ++ off (d * 0x10_0000)

let dom_struct d = dom_base d
let dom_id_field = 0L
let dom_is_control = 8L
let dom_state = 16L

let shared_info d = dom_base d ++ 0x1000L
let si_evtchn_pending = 0x00L
let si_evtchn_mask = 0x40L
let si_wc_sec = 0x80L
let si_wc_nsec = 0x88L

let vcpu_info ~dom ~vcpu =
  if vcpu < 0 || vcpu >= vcpus_per_domain then invalid_arg "Layout.vcpu_info";
  shared_info dom ++ off (0x100 + (vcpu * 0x40))

let vi_upcall_pending = 0x00L
let vi_pending_sel = 0x08L
let vi_time_version = 0x10L
let vi_tsc_timestamp = 0x18L
let vi_system_time = 0x20L

let evtchn_ports = 256

let evtchn_entry ~dom ~port =
  if port < 0 || port >= evtchn_ports then invalid_arg "Layout.evtchn_entry";
  dom_base dom ++ 0x2000L ++ off (port * 16)

let evtchn_state = 0L
let evtchn_target = 8L

let grant_entries = 128

let grant_entry ~dom i =
  if i < 0 || i >= grant_entries then invalid_arg "Layout.grant_entry";
  dom_base dom ++ 0x4000L ++ off (i * 16)

let grant_flags = 0L
let grant_frame = 8L

let vcpu_area ~dom ~vcpu =
  if vcpu < 0 || vcpu >= vcpus_per_domain then invalid_arg "Layout.vcpu_area";
  dom_base dom ++ 0x8000L ++ off (vcpu * 0x1000)

let vcpu_user_regs = 0x000L
let vcpu_user_rip = 0x080L
let vcpu_user_rflags = 0x088L
let vcpu_is_idle = 0x100L
let vcpu_running = 0x108L
let vcpu_pending_traps = 0x140L
let vcpu_trap_slots = 8

let map_host mem ~cpus ~domains =
  if domains < 1 || domains > max_domains then
    invalid_arg "Layout.map_host: domain count out of range";
  if cpus < 1 || cpus > 16 then
    invalid_arg "Layout.map_host: cpu count out of range";
  let open Xentry_machine in
  Memory.map_region mem ~addr:hv_stack_base ~size:(cpus * hv_stack_size);
  Memory.map_region mem ~addr:hv_global_base ~size:4096;
  Memory.map_region mem ~addr:irq_desc_base ~size:4096;
  Memory.map_region mem ~addr:time_area_base ~size:4096;
  Memory.map_region mem ~addr:request_base ~size:4096;
  Memory.map_region mem ~addr:tasklet_pool_base ~size:4096;
  Memory.map_region mem ~addr:guest_buffer ~size:0x4000;
  Memory.map_region mem ~addr:bounce_buffer ~size:0x8000;
  Memory.map_region mem ~addr:pt_root_base ~size:(3 * 4096);
  for d = 0 to domains - 1 do
    (* One 64 KiB block covers the domain struct, shared info, event
       channels, grant table and vcpu areas. *)
    Memory.map_region mem ~addr:(dom_base d) ~size:0x10000
  done

(* APIC model and miscellaneous scratch (within already mapped pages). *)
let apic_eoi = irq_desc_base ++ 0x800L
let apic_log = irq_desc_base ++ 0x808L
let tlb_scratch = hv_global_base ++ 0x100L
let crash_record = hv_global_base ++ 0x200L
let rcu_list = hv_global_base ++ 0x300L
