(** VM exit reasons: why the hypervisor was activated.

    The paper (§IV) intercepts five categories of hypervisor
    executions: common device interrupts ([do_irq]), APIC-generated
    interrupts (ten handlers), softirqs/tasklets, the 19 exceptions,
    and the 38 hypercalls.  The exit reason is Xentry's first
    classification feature (VMER in Table I): in full virtualization
    it comes from the VMCS, in para-virtualization from the invoked
    handler. *)

(** The ten APIC interrupt handlers (category 2 in §IV). *)
type apic =
  | Apic_timer
  | Apic_error
  | Apic_spurious
  | Apic_thermal
  | Apic_perf_counter
  | Ipi_event_check
  | Ipi_invalidate_tlb
  | Ipi_call_function
  | Ipi_reschedule
  | Ipi_irq_move

type t =
  | Irq of int  (** common device interrupt line, 0–15 *)
  | Apic of apic
  | Softirq
  | Tasklet
  | Exception of Xentry_machine.Hw_exception.t
      (** guest-raised exception trapped by the hypervisor *)
  | Hypercall of Hypercall.t

val irq_lines : int
(** Number of modelled device interrupt lines (16). *)

val all : t array
(** Every distinct exit reason (16 + 10 + 2 + 19 + 38 = 85). *)

val count : int

val to_id : t -> int
(** Stable dense id in \[0, count), the VMER feature value. *)

val of_id : int -> t option

val name : t -> string

val category : t -> string
(** One of ["irq"], ["apic"], ["softirq"], ["tasklet"], ["exception"],
    ["hypercall"]. *)

val apic_name : apic -> string

val pp : Format.formatter -> t -> unit
