(** A credit scheduler in the style of Xen's default scheduler.

    Each VCPU receives credits proportional to its weight; the running
    VCPU is debited on every scheduler tick; VCPUs with positive
    credits ([Under] priority) run before those that have overdrawn
    ([Over]).  When every runnable VCPU is in [Over], credits are
    refilled.  The hypervisor model uses it to rotate guest VCPUs
    across VM exits, and the context-switch handler synthesis reads the
    queue head it publishes. *)

type vcpu_id = { dom : int; vcpu : int }

type priority = Under | Over

type t

val create : ?rng_seed:int -> (vcpu_id * int) list -> t
(** [create vcpus] builds a scheduler over [(id, weight)] pairs;
    weights must be positive.  The first VCPU in the list runs first.
    Raises [Invalid_argument] on an empty list or non-positive
    weight. *)

val current : t -> vcpu_id
(** The VCPU currently running. *)

val credits : t -> vcpu_id -> int
(** Remaining credits (may be negative). *)

val priority : t -> vcpu_id -> priority

val tick : t -> ?cost:int -> unit -> unit
(** Account one scheduler tick against the running VCPU (default cost
    100 credits, as in Xen's 10 ms tick at weight 256). *)

val pick_next : t -> vcpu_id
(** Preempt the current VCPU, move it to the tail of its priority
    class, and dispatch the best runnable VCPU.  Refills credits when
    all runnable VCPUs are over. *)

val block : t -> vcpu_id -> unit
(** Remove a VCPU from the run queue (it keeps its credits).  Blocking
    the running VCPU forces a dispatch of the next one. *)

val wake : t -> vcpu_id -> unit
(** Return a blocked VCPU to the run queue; wakers with [Under]
    priority preempt an [Over] current VCPU (boost), as in Xen. *)

val is_runnable : t -> vcpu_id -> bool

val runnable_count : t -> int

val run_queue : t -> vcpu_id list
(** Runnable VCPUs in dispatch order, current first. *)

val pp : Format.formatter -> t -> unit

val copy : t -> t
(** Deep copy preserving credits, runnable flags and queue order. *)
