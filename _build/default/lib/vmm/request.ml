type t = { reason : Exit_reason.t; args : int64 array; guest : int64 array }

let guest_reg_count = 6

let pad n default xs =
  Array.init n (fun i -> match List.nth_opt xs i with Some v -> v | None -> default)

let make ~reason ~args ~guest =
  let args = pad 8 0L args in
  let guest = pad guest_reg_count 0L guest in
  (match reason with
  | Exit_reason.Hypercall h ->
      (* Hypercall ABI: RAX carries the hypercall number and RDI, RSI,
         RDX the first three arguments — always, or the handler would
         read unrelated guest values as arguments. *)
      guest.(0) <- Int64.of_int (Hypercall.number h);
      guest.(5) <- args.(0);
      guest.(4) <- args.(1);
      guest.(3) <- args.(2)
  | _ -> ());
  { reason; args; guest }

let pp ppf t =
  Format.fprintf ppf "%a(args=%Ld,%Ld,%Ld)" Exit_reason.pp t.reason t.args.(0)
    t.args.(1) t.args.(2)
