type vcpu_id = { dom : int; vcpu : int }
type priority = Under | Over

type entry = {
  id : vcpu_id;
  weight : int;
  mutable credit : int;
  mutable runnable : bool;
}

type t = {
  entries : entry list;  (** fixed population *)
  mutable queue : entry list;  (** runnable, dispatch order; head = current *)
  refill : int;  (** credits granted per weight unit at refill *)
}

let find t id =
  match List.find_opt (fun e -> e.id = id) t.entries with
  | Some e -> e
  | None -> invalid_arg "Scheduler: unknown vcpu"

let create ?rng_seed:_ vcpus =
  if vcpus = [] then invalid_arg "Scheduler.create: no vcpus";
  List.iter
    (fun (_, w) ->
      if w <= 0 then invalid_arg "Scheduler.create: weight must be positive")
    vcpus;
  let entries =
    List.map
      (fun (id, weight) -> { id; weight; credit = weight; runnable = true })
      vcpus
  in
  { entries; queue = entries; refill = 1 }

let current t =
  match t.queue with
  | e :: _ -> e.id
  | [] -> invalid_arg "Scheduler: nothing runnable"

let credits t id = (find t id).credit

let priority_of e = if e.credit > 0 then Under else Over

let priority t id = priority_of (find t id)

let tick t ?(cost = 100) () =
  match t.queue with e :: _ -> e.credit <- e.credit - cost | [] -> ()

let refill_all t =
  List.iter (fun e -> e.credit <- e.credit + (e.weight * t.refill * 100)) t.entries

let sort_queue queue =
  (* Stable partition: Under first, preserving rotation order. *)
  let under = List.filter (fun e -> priority_of e = Under) queue in
  let over = List.filter (fun e -> priority_of e = Over) queue in
  under @ over

let pick_next t =
  (match t.queue with
  | prev :: rest -> t.queue <- sort_queue (rest @ [ prev ])
  | [] -> ());
  if t.queue <> [] && List.for_all (fun e -> priority_of e = Over) t.queue then begin
    refill_all t;
    t.queue <- sort_queue t.queue
  end;
  current t

let block t id =
  let e = find t id in
  e.runnable <- false;
  t.queue <- List.filter (fun e' -> e' != e) t.queue

let wake t id =
  let e = find t id in
  if not e.runnable then begin
    e.runnable <- true;
    (* Boost: an Under waker preempts an Over current. *)
    match t.queue with
    | cur :: _ when priority_of e = Under && priority_of cur = Over ->
        t.queue <- e :: t.queue
    | _ -> t.queue <- sort_queue (t.queue @ [ e ])
  end

let is_runnable t id = (find t id).runnable

let runnable_count t = List.length t.queue

let run_queue t = List.map (fun e -> e.id) t.queue

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "dom%d.v%d credit=%d %s%s@ " e.id.dom e.id.vcpu
        e.credit
        (match priority_of e with Under -> "UNDER" | Over -> "OVER")
        (if e.runnable then "" else " (blocked)"))
    t.entries;
  Format.fprintf ppf "@]"

let copy t =
  let entries =
    List.map
      (fun e ->
        { id = e.id; weight = e.weight; credit = e.credit; runnable = e.runnable })
      t.entries
  in
  let clone_of e = List.find (fun e' -> e'.id = e.id) entries in
  { entries; queue = List.map clone_of t.queue; refill = t.refill }
