open Xentry_machine

type state = Free | Unbound | Interdomain | Pirq | Virq | Ipi

let state_to_int = function
  | Free -> 0
  | Unbound -> 1
  | Interdomain -> 2
  | Pirq -> 3
  | Virq -> 4
  | Ipi -> 5

let state_of_int = function
  | 0 -> Some Free
  | 1 -> Some Unbound
  | 2 -> Some Interdomain
  | 3 -> Some Pirq
  | 4 -> Some Virq
  | 5 -> Some Ipi
  | _ -> None

let check_port port =
  if port < 0 || port >= Layout.evtchn_ports then
    invalid_arg "Event_channel: port out of range"

let entry ~dom ~port = Layout.evtchn_entry ~dom ~port

let bind mem ~dom ~port ~state ~target_vcpu =
  check_port port;
  let e = entry ~dom ~port in
  Memory.store64 mem
    (Int64.add e Layout.evtchn_state)
    (Int64.of_int (state_to_int state));
  Memory.store64 mem
    (Int64.add e Layout.evtchn_target)
    (Int64.of_int target_vcpu)

let port_state mem ~dom ~port =
  check_port port;
  let v =
    Memory.load64 mem (Int64.add (entry ~dom ~port) Layout.evtchn_state)
  in
  state_of_int (Int64.to_int v)

let pending_word_address ~dom ~port =
  check_port port;
  Int64.add
    (Int64.add (Layout.shared_info dom) Layout.si_evtchn_pending)
    (Int64.of_int (port / 64 * 8))

let mask_word_address ~dom ~port =
  check_port port;
  Int64.add
    (Int64.add (Layout.shared_info dom) Layout.si_evtchn_mask)
    (Int64.of_int (port / 64 * 8))

let bit_in_word ~port = port mod 64

let set_bit mem addr bit value =
  let w = Memory.load64 mem addr in
  let w' =
    if value then Xentry_util.Bits.set w bit else Xentry_util.Bits.clear w bit
  in
  Memory.store64 mem addr w'

let get_bit mem addr bit = Xentry_util.Bits.test (Memory.load64 mem addr) bit

let set_mask mem ~dom ~port masked =
  set_bit mem (mask_word_address ~dom ~port) (bit_in_word ~port) masked

let is_masked mem ~dom ~port =
  get_bit mem (mask_word_address ~dom ~port) (bit_in_word ~port)

let is_pending mem ~dom ~port =
  get_bit mem (pending_word_address ~dom ~port) (bit_in_word ~port)

let clear_pending mem ~dom ~port =
  set_bit mem (pending_word_address ~dom ~port) (bit_in_word ~port) false

let send mem ~dom ~port =
  check_port port;
  set_bit mem (pending_word_address ~dom ~port) (bit_in_word ~port) true;
  if not (is_masked mem ~dom ~port) then begin
    let target =
      Int64.to_int
        (Memory.load64 mem (Int64.add (entry ~dom ~port) Layout.evtchn_target))
    in
    let vcpu = max 0 (min (Layout.vcpus_per_domain - 1) target) in
    Memory.store64 mem
      (Int64.add (Layout.vcpu_info ~dom ~vcpu) Layout.vi_upcall_pending)
      1L
  end
