(** Event channels: Xen's asynchronous notification mechanism.

    An event channel is a port in a per-domain table; signalling a port
    sets its bit in the shared-info [evtchn_pending] bitmap and, unless
    masked, flags the target VCPU's [upcall_pending] (the exact
    [evtchn_set_pending] / [vcpu_mark_events_pending] control flow of
    the paper's Fig 5b).  The reference implementations here define the
    semantics the synthesized handlers must match and serve test
    oracles and outcome classification. *)

type state = Free | Unbound | Interdomain | Pirq | Virq | Ipi

val state_to_int : state -> int
val state_of_int : int -> state option

val bind :
  Xentry_machine.Memory.t ->
  dom:int ->
  port:int ->
  state:state ->
  target_vcpu:int ->
  unit
(** Initialize a port's table entry. *)

val port_state : Xentry_machine.Memory.t -> dom:int -> port:int -> state option

val set_mask : Xentry_machine.Memory.t -> dom:int -> port:int -> bool -> unit
(** Mask or unmask a port in the shared-info mask bitmap. *)

val is_masked : Xentry_machine.Memory.t -> dom:int -> port:int -> bool

val is_pending : Xentry_machine.Memory.t -> dom:int -> port:int -> bool

val clear_pending : Xentry_machine.Memory.t -> dom:int -> port:int -> unit

val send : Xentry_machine.Memory.t -> dom:int -> port:int -> unit
(** Reference semantics of [evtchn_set_pending]: set the pending bit;
    if the port is unmasked, mark the target VCPU's upcall pending.
    Raises [Invalid_argument] for an out-of-range port. *)

val pending_word_address : dom:int -> port:int -> int64
(** Address of the 64-bit pending word covering [port] (used when
    synthesizing handler code). *)

val mask_word_address : dom:int -> port:int -> int64

val bit_in_word : port:int -> int
