type apic =
  | Apic_timer
  | Apic_error
  | Apic_spurious
  | Apic_thermal
  | Apic_perf_counter
  | Ipi_event_check
  | Ipi_invalidate_tlb
  | Ipi_call_function
  | Ipi_reschedule
  | Ipi_irq_move

let all_apic =
  [|
    Apic_timer;
    Apic_error;
    Apic_spurious;
    Apic_thermal;
    Apic_perf_counter;
    Ipi_event_check;
    Ipi_invalidate_tlb;
    Ipi_call_function;
    Ipi_reschedule;
    Ipi_irq_move;
  |]

type t =
  | Irq of int
  | Apic of apic
  | Softirq
  | Tasklet
  | Exception of Xentry_machine.Hw_exception.t
  | Hypercall of Hypercall.t

let irq_lines = 16

let all =
  Array.concat
    [
      Array.init irq_lines (fun i -> Irq i);
      Array.map (fun a -> Apic a) all_apic;
      [| Softirq; Tasklet |];
      Array.map (fun e -> Exception e) Xentry_machine.Hw_exception.all;
      Array.map (fun h -> Hypercall h) Hypercall.all;
    ]

let count = Array.length all

let apic_index a =
  let rec find i = if all_apic.(i) == a then i else find (i + 1) in
  find 0

let to_id = function
  | Irq n ->
      if n < 0 || n >= irq_lines then invalid_arg "Exit_reason.to_id: bad irq";
      n
  | Apic a -> irq_lines + apic_index a
  | Softirq -> irq_lines + Array.length all_apic
  | Tasklet -> irq_lines + Array.length all_apic + 1
  | Exception e ->
      let base = irq_lines + Array.length all_apic + 2 in
      let rec find i =
        if Xentry_machine.Hw_exception.all.(i) == e then i else find (i + 1)
      in
      base + find 0
  | Hypercall h ->
      irq_lines + Array.length all_apic + 2
      + Xentry_machine.Hw_exception.count + Hypercall.number h

let of_id i = if i < 0 || i >= count then None else Some all.(i)

let apic_name = function
  | Apic_timer -> "apic_timer"
  | Apic_error -> "apic_error"
  | Apic_spurious -> "apic_spurious"
  | Apic_thermal -> "apic_thermal"
  | Apic_perf_counter -> "apic_perf_counter"
  | Ipi_event_check -> "ipi_event_check"
  | Ipi_invalidate_tlb -> "ipi_invalidate_tlb"
  | Ipi_call_function -> "ipi_call_function"
  | Ipi_reschedule -> "ipi_reschedule"
  | Ipi_irq_move -> "ipi_irq_move"

let name = function
  | Irq n -> Printf.sprintf "irq%d" n
  | Apic a -> apic_name a
  | Softirq -> "softirq"
  | Tasklet -> "tasklet"
  | Exception e ->
      "exception_"
      ^ String.lowercase_ascii
          (String.concat ""
             (String.split_on_char '#' (Xentry_machine.Hw_exception.name e)))
  | Hypercall h -> "hypercall_" ^ Hypercall.name h

let category = function
  | Irq _ -> "irq"
  | Apic _ -> "apic"
  | Softirq -> "softirq"
  | Tasklet -> "tasklet"
  | Exception _ -> "exception"
  | Hypercall _ -> "hypercall"

let pp ppf t = Format.pp_print_string ppf (name t)
