type t =
  | Set_trap_table
  | Mmu_update
  | Set_gdt
  | Stack_switch
  | Set_callbacks
  | Fpu_taskswitch
  | Sched_op_compat
  | Platform_op
  | Set_debugreg
  | Get_debugreg
  | Update_descriptor
  | Memory_op
  | Multicall
  | Update_va_mapping
  | Set_timer_op
  | Event_channel_op_compat
  | Xen_version
  | Console_io
  | Physdev_op_compat
  | Grant_table_op
  | Vm_assist
  | Update_va_mapping_otherdomain
  | Iret
  | Vcpu_op
  | Set_segment_base
  | Mmuext_op
  | Xsm_op
  | Nmi_op
  | Sched_op
  | Callback_op
  | Xenoprof_op
  | Event_channel_op
  | Physdev_op
  | Hvm_op
  | Sysctl
  | Domctl
  | Kexec_op
  | Tmem_op

let all =
  [|
    Set_trap_table;
    Mmu_update;
    Set_gdt;
    Stack_switch;
    Set_callbacks;
    Fpu_taskswitch;
    Sched_op_compat;
    Platform_op;
    Set_debugreg;
    Get_debugreg;
    Update_descriptor;
    Memory_op;
    Multicall;
    Update_va_mapping;
    Set_timer_op;
    Event_channel_op_compat;
    Xen_version;
    Console_io;
    Physdev_op_compat;
    Grant_table_op;
    Vm_assist;
    Update_va_mapping_otherdomain;
    Iret;
    Vcpu_op;
    Set_segment_base;
    Mmuext_op;
    Xsm_op;
    Nmi_op;
    Sched_op;
    Callback_op;
    Xenoprof_op;
    Event_channel_op;
    Physdev_op;
    Hvm_op;
    Sysctl;
    Domctl;
    Kexec_op;
    Tmem_op;
  |]

let count = Array.length all

let number h =
  let rec find i = if all.(i) == h then i else find (i + 1) in
  find 0

let of_number n = if n < 0 || n >= count then None else Some all.(n)

let name = function
  | Set_trap_table -> "set_trap_table"
  | Mmu_update -> "mmu_update"
  | Set_gdt -> "set_gdt"
  | Stack_switch -> "stack_switch"
  | Set_callbacks -> "set_callbacks"
  | Fpu_taskswitch -> "fpu_taskswitch"
  | Sched_op_compat -> "sched_op_compat"
  | Platform_op -> "platform_op"
  | Set_debugreg -> "set_debugreg"
  | Get_debugreg -> "get_debugreg"
  | Update_descriptor -> "update_descriptor"
  | Memory_op -> "memory_op"
  | Multicall -> "multicall"
  | Update_va_mapping -> "update_va_mapping"
  | Set_timer_op -> "set_timer_op"
  | Event_channel_op_compat -> "event_channel_op_compat"
  | Xen_version -> "xen_version"
  | Console_io -> "console_io"
  | Physdev_op_compat -> "physdev_op_compat"
  | Grant_table_op -> "grant_table_op"
  | Vm_assist -> "vm_assist"
  | Update_va_mapping_otherdomain -> "update_va_mapping_otherdomain"
  | Iret -> "iret"
  | Vcpu_op -> "vcpu_op"
  | Set_segment_base -> "set_segment_base"
  | Mmuext_op -> "mmuext_op"
  | Xsm_op -> "xsm_op"
  | Nmi_op -> "nmi_op"
  | Sched_op -> "sched_op"
  | Callback_op -> "callback_op"
  | Xenoprof_op -> "xenoprof_op"
  | Event_channel_op -> "event_channel_op"
  | Physdev_op -> "physdev_op"
  | Hvm_op -> "hvm_op"
  | Sysctl -> "sysctl"
  | Domctl -> "domctl"
  | Kexec_op -> "kexec_op"
  | Tmem_op -> "tmem_op"

type shape =
  | Table_write
  | Mmu_batch
  | Copy_buffer
  | Event_op
  | Sched
  | Timer
  | Grant
  | Query
  | Control

let shape = function
  | Set_trap_table | Set_gdt | Update_descriptor | Set_callbacks
  | Set_debugreg ->
      Table_write
  | Mmu_update | Update_va_mapping | Update_va_mapping_otherdomain
  | Mmuext_op | Memory_op ->
      Mmu_batch
  | Console_io | Multicall | Xenoprof_op | Tmem_op -> Copy_buffer
  | Event_channel_op | Event_channel_op_compat | Physdev_op
  | Physdev_op_compat | Nmi_op | Callback_op ->
      Event_op
  | Sched_op | Sched_op_compat | Stack_switch | Iret | Fpu_taskswitch ->
      Sched
  | Set_timer_op | Vcpu_op -> Timer
  | Grant_table_op -> Grant
  | Xen_version | Get_debugreg | Set_segment_base | Vm_assist | Xsm_op
  | Hvm_op ->
      Query
  | Platform_op | Sysctl | Domctl | Kexec_op -> Control

let pp ppf h = Format.pp_print_string ppf (name h)
