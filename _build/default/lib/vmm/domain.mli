(** Domains and virtual CPUs.

    A domain is a guest VM (Dom0 is the control domain, paper §II-A);
    its state lives entirely in simulated memory per {!Layout} so that
    handler programs manipulate it with real loads and stores.  This
    module provides the OCaml-side constructors and typed accessors
    used to set up hosts, to seed guest state, and to compare
    guest-visible regions between golden and faulted runs. *)

type t = {
  id : int;
  is_control : bool;  (** Dom0 *)
  mem : Xentry_machine.Memory.t;
}

val init : Xentry_machine.Memory.t -> id:int -> is_control:bool -> t
(** Initialize the domain block in (already mapped) memory: identity
    fields, cleared event channels, empty pending-trap slots. *)

val base : t -> int64

(** {1 Guest register file (per-VCPU [user_regs])} *)

val get_user_reg : t -> vcpu:int -> Xentry_isa.Reg.gpr -> int64
val set_user_reg : t -> vcpu:int -> Xentry_isa.Reg.gpr -> int64 -> unit
val get_user_rip : t -> vcpu:int -> int64
val set_user_rip : t -> vcpu:int -> int64 -> unit

val user_regs_address : t -> vcpu:int -> int64
(** Address of the [user_regs] save area. *)

(** {1 VCPU state} *)

val set_idle : t -> vcpu:int -> bool -> unit
val is_idle : t -> vcpu:int -> bool
val set_running : t -> vcpu:int -> bool -> unit
val is_running : t -> vcpu:int -> bool

(** {1 Pending trap slots (Listing 1's FIRST..LAST scan)} *)

val clear_pending_traps : t -> vcpu:int -> unit
val set_pending_trap : t -> vcpu:int -> slot:int -> trap:int -> unit
val pending_trap : t -> vcpu:int -> slot:int -> int64

(** {1 VCPU info inside the shared-info page} *)

val upcall_pending : t -> vcpu:int -> bool
val set_upcall_pending : t -> vcpu:int -> bool -> unit
val vcpu_system_time : t -> vcpu:int -> int64

(** {1 Guest-visible regions for golden-run comparison} *)

type region = { region_name : string; addr : int64; len : int }

val guest_visible_regions : t -> region list
(** The regions whose corruption propagates to this domain: user_regs
    of every VCPU, the shared-info page (event channels and time), the
    event-channel table and the grant table. *)

val pp : Format.formatter -> t -> unit
