(** Reusable assembler fragments for synthesized hypervisor handlers.

    Every handler program follows the same register conventions:

    - at VM exit the CPU registers RAX, RBX, RCX, RDX, RSI, RDI carry
      the guest's values (hardware-saved in real VMX; seeded by the
      driver here);
    - the {!prologue} saves them into the current VCPU's [user_regs]
      and establishes the handler environment: R12 = current domain
      base, R13 = request page, R14 = current shared-info page, R15 =
      current VCPU area;
    - blocks use RAX–RDX, RSI, RDI and R8–R11 as scratch and must not
      clobber R12–R15;
    - the {!epilogue} reloads the guest registers from [user_regs]
      (honouring any context switch that moved R15) and executes
      [Vmentry].

    Faults injected during the prologue corrupt saved guest state;
    faults in a body corrupt hypervisor work; faults in the epilogue
    corrupt the state the guest resumes with — together they realize
    the propagation paths of the paper's Fig 2. *)

open Xentry_isa

type ctx = { reason : Exit_reason.t; mutable next_assert : int }
(** Per-program context: names and numbers the assertions emitted for
    one handler so detections can be attributed. *)

val make_ctx : Exit_reason.t -> ctx

val assert_id_base : Exit_reason.t -> int
(** First assertion id allotted to a reason (16 ids per reason). *)

(** {1 Emission helpers} *)

val mov : Program.Asm.builder -> Operand.t -> Operand.t -> unit
val add : Program.Asm.builder -> Operand.t -> Operand.t -> unit
val sub : Program.Asm.builder -> Operand.t -> Operand.t -> unit
val cmp : Program.Asm.builder -> Operand.t -> Operand.t -> unit
val test : Program.Asm.builder -> Operand.t -> Operand.t -> unit
val jmp : Program.Asm.builder -> string -> unit
val jcc : Program.Asm.builder -> Cond.t -> string -> unit
val inc : Program.Asm.builder -> Operand.t -> unit
val dec : Program.Asm.builder -> Operand.t -> unit

val emit_assert_range :
  ctx -> Program.Asm.builder -> name:string -> Operand.t -> int64 -> int64 -> unit
(** Boundary assertion (paper Listing 1 style). *)

val emit_assert_equals :
  ctx -> Program.Asm.builder -> name:string -> Operand.t -> int64 -> unit
(** Condition assertion (paper Listing 2 style). *)

val emit_assert_nonzero :
  ctx -> Program.Asm.builder -> name:string -> Operand.t -> unit

(** {1 Context transfer} *)

val prologue : ?hardened:bool -> Program.Asm.builder -> unit
(** [~hardened:true] (default false) enables the paper's SVI
    selective-duplication future work: the frame copy verifies each
    slot against the still-live register, BUG()ing on mismatch. *)

val epilogue : Program.Asm.builder -> unit

val store_guest_rax : Program.Asm.builder -> Operand.t -> unit
(** Set the guest's RAX save slot (hypercall return value). *)

val load_arg : Program.Asm.builder -> int -> Reg.gpr -> unit
(** [load_arg b n dst] loads request argument [n] into [dst]. *)

val advance_guest_rip : Program.Asm.builder -> int -> unit
(** Skip the emulated instruction in the guest (e.g. [cpuid] is 2
    bytes). *)

(** {1 Subsystem blocks} *)

val evtchn_deliver : ctx -> Program.Asm.builder -> out:string -> unit
(** Deliver the event-channel port in RDI to the current domain:
    bounds check, set pending bit, honour the mask, mark the target
    VCPU's upcall pending unless already set (Fig 5b's control flow).
    Jumps to [out] on an invalid port; falls through when done. *)

val time_update : ?hardened:bool -> ctx -> Program.Asm.builder -> unit
(** Read the TSC, scale it with the time-area constants, store
    [system_time], and publish a seqlock-versioned snapshot into the
    current VCPU's time area.  [~hardened:true] adds the SVI
    rdtsc-variation check and a duplicated scaling computation. *)

val jiffies_tick : Program.Asm.builder -> unit

val copy_from_guest :
  ctx -> Program.Asm.builder -> count_words_max:int -> unit
(** Bounded [rep movsq] from the guest buffer into the bounce buffer;
    the word count is taken from RDX (Fig 5a's [copy_from_user]
    shape).  Leaves the count in RDX. *)

val checksum_bounce : Program.Asm.builder -> unit
(** XOR-fold RDX words of the bounce buffer into RAX. *)

val pt_walk : ctx -> Program.Asm.builder -> not_present:string -> unit
(** Walk the synthetic three-level page table for the virtual address
    in RDI, setting accessed bits; jumps to [not_present] when a level
    misses. *)

val deliver_pending_traps : ctx -> Program.Asm.builder -> unit
(** Listing 1: scan the VCPU's pending-trap slots, assert each trap
    number is within range, deliver it to the vcpu_info and clear the
    slot. *)

val queue_guest_trap : ctx -> Program.Asm.builder -> unit
(** Queue the trap number in R9 into the first free pending-trap slot
    of the current VCPU. *)

val context_switch : ctx -> Program.Asm.builder -> unit
(** Switch to the VCPU at the head of the run queue, updating the
    current-vcpu/domain globals and R12/R14/R15.  When the queue is
    empty, asserts the current VCPU is the idle VCPU (Listing 2)
    before leaving it in place. *)

val apic_eoi : Program.Asm.builder -> int -> unit
(** Signal end-of-interrupt for the given vector. *)

val exit_audit : ?hardened:bool -> ctx -> Program.Asm.builder -> unit
(** Exit-path bookkeeping every handler runs before VM entry:
    per-reason stat accounting, a pending-event scan over the shared
    info, and a pending-trap walk — pointer-dependent loads and
    data-dependent branches matching Xen's exit path. *)
