(** The hypercall table of Xen 4.1.2.

    The paper (§IV) intercepts "38 hypercalls in current Xen 4.1.2" by
    replacing hypercall-page entries; this module enumerates the same
    table so every hypercall has a stable number, a name and a body
    shape used to synthesize its handler. *)

type t =
  | Set_trap_table
  | Mmu_update
  | Set_gdt
  | Stack_switch
  | Set_callbacks
  | Fpu_taskswitch
  | Sched_op_compat
  | Platform_op
  | Set_debugreg
  | Get_debugreg
  | Update_descriptor
  | Memory_op
  | Multicall
  | Update_va_mapping
  | Set_timer_op
  | Event_channel_op_compat
  | Xen_version
  | Console_io
  | Physdev_op_compat
  | Grant_table_op
  | Vm_assist
  | Update_va_mapping_otherdomain
  | Iret
  | Vcpu_op
  | Set_segment_base
  | Mmuext_op
  | Xsm_op
  | Nmi_op
  | Sched_op
  | Callback_op
  | Xenoprof_op
  | Event_channel_op
  | Physdev_op
  | Hvm_op
  | Sysctl
  | Domctl
  | Kexec_op
  | Tmem_op

val all : t array
(** The 38 hypercalls in hypercall-number order. *)

val count : int
(** 38. *)

val number : t -> int
(** Position in the hypercall table. *)

val of_number : int -> t option

val name : t -> string
(** Xen name, e.g. ["event_channel_op"]. *)

(** Shape of the handler body synthesized for a hypercall.  Several
    hypercalls share a shape but are parameterized differently (table
    sizes, validation bounds, loop scales), so their dynamic feature
    vectors remain distinguishable. *)
type shape =
  | Table_write  (** validate and write entries into a table *)
  | Mmu_batch  (** batched page-table updates with a count argument *)
  | Copy_buffer  (** copy_from_guest / process / copy_to_guest *)
  | Event_op  (** event-channel manipulation *)
  | Sched  (** scheduling: possible context switch *)
  | Timer  (** time computation and deadline programming *)
  | Grant  (** grant-table map/copy *)
  | Query  (** small read-mostly query *)
  | Control  (** control-plane operation (domctl/sysctl style) *)

val shape : t -> shape

val pp : Format.formatter -> t -> unit
