open Xentry_isa
module A = Program.Asm

type ctx = { reason : Exit_reason.t; mutable next_assert : int }

let assert_id_base reason = Exit_reason.to_id reason * 16

let make_ctx reason = { reason; next_assert = assert_id_base reason }

let fresh_assert ctx =
  let id = ctx.next_assert in
  ctx.next_assert <- id + 1;
  id

let r g = Operand.reg g
let i v = Operand.imm v
let ii v = Operand.imm_int v
let m ?index ?scale ?disp base = Operand.mem ?index ?scale ?disp base
let mabs = Operand.mem_abs

let mov b dst src = A.emit b (Instr.Mov (dst, src))
let add b dst src = A.emit b (Instr.Alu (Instr.Add, dst, src))
let sub b dst src = A.emit b (Instr.Alu (Instr.Sub, dst, src))
let xor b dst src = A.emit b (Instr.Alu (Instr.Xor, dst, src))
let or_ b dst src = A.emit b (Instr.Alu (Instr.Or, dst, src))
let and_ b dst src = A.emit b (Instr.Alu (Instr.And, dst, src))
let cmp b a c = A.emit b (Instr.Cmp (a, c))
let test b a c = A.emit b (Instr.Test (a, c))
let jmp b l = A.emit b (Instr.Jmp l)
let jcc b c l = A.emit b (Instr.Jcc (c, l))
let shl b dst n = A.emit b (Instr.Shift (Instr.Shl, dst, n))
let shr b dst n = A.emit b (Instr.Shift (Instr.Shr, dst, n))
let inc b dst = A.emit b (Instr.Inc dst)
let dec b dst = A.emit b (Instr.Dec dst)

let emit_assert ctx b ~name src kind =
  A.emit b
    (Instr.Assert
       {
         Instr.assert_id = fresh_assert ctx;
         assert_name = Printf.sprintf "%s/%s" (Exit_reason.name ctx.reason) name;
         assert_src = src;
         assert_kind = kind;
       })

let emit_assert_range ctx b ~name src lo hi =
  emit_assert ctx b ~name src (Instr.Assert_range (lo, hi))

let emit_assert_equals ctx b ~name src v =
  emit_assert ctx b ~name src (Instr.Assert_equals v)

let emit_assert_nonzero ctx b ~name src =
  emit_assert ctx b ~name src Instr.Assert_nonzero

(* Guest registers saved/restored by the context-transfer code, in
   user_regs slot order. *)
let guest_regs = Reg.[ RAX; RBX; RCX; RDX; RSI; RDI ]

let prologue ?(hardened = false) b =
  (* As in Xen's PV entry path, the guest register file transits the
     hypervisor stack: the entry stub pushes the guest GPRs (building
     the cpu_user_regs frame), and the frame is then copied into the
     current VCPU's save area.  A corrupted register is pushed
     corrupted; a corrupted RSP faults immediately.

     In the hardened variant (the paper's SVI selective-duplication
     future work) the frame copy verifies each slot against the
     still-live register: a mismatch means either the register or its
     pushed copy was corrupted in flight, and BUG()s out instead of
     handing the guest poisoned state. *)
  List.iter (fun g -> A.emit b (Instr.Push (r g))) guest_regs;
  (* Establish handler environment pointers (R12–R15 carry no guest
     state in our convention). *)
  mov b (r Reg.R12) (mabs Layout.global_current_dom);
  mov b (r Reg.R15) (mabs Layout.global_current_vcpu);
  mov b (r Reg.R14) (r Reg.R12);
  add b (r Reg.R14) (i 0x1000L);
  mov b (r Reg.R13) (i Layout.request_base);
  (* Copy the stack frame into user_regs.  RDI was pushed last, so the
     frame is in reverse register order from RSP upward. *)
  let n = List.length guest_regs in
  List.iteri
    (fun k g ->
      let frame_off = Int64.of_int ((n - 1 - k) * 8) in
      mov b (r Reg.R10) (m Reg.RSP ~disp:frame_off);
      if hardened then begin
        let ok = A.fresh_label b "dup_ok" in
        cmp b (r Reg.R10) (r g);
        jcc b Cond.E ok;
        A.emit b Instr.Ud2;
        A.label b ok
      end;
      mov b (m Reg.R15 ~disp:(Int64.of_int (k * 8))) (r Reg.R10))
    guest_regs

let epilogue b =
  (* BUG_ON-style integrity checks before touching guest state, as
     Xen's exit path re-derives and validates its environment: the
     cached current-VCPU and current-domain pointers must agree with
     the per-CPU globals, the shared-info pointer with its derivation,
     and the stack must unwind to the per-CPU stack top.  A corrupted
     pointer reaches ud2 -> #UD instead of silently spraying the
     domain block with guest-visible garbage. *)
  let bug = A.fresh_label b "epi_bug" in
  let ptr_ok = A.fresh_label b "epi_ptr_ok" in
  mov b (r Reg.R10) (mabs Layout.global_current_vcpu);
  cmp b (r Reg.R10) (r Reg.R15);
  jcc b Cond.NE bug;
  mov b (r Reg.R10) (mabs Layout.global_current_dom);
  cmp b (r Reg.R10) (r Reg.R12);
  jcc b Cond.NE bug;
  add b (r Reg.R10) (i 0x1000L);
  cmp b (r Reg.R10) (r Reg.R14);
  jcc b Cond.NE bug;
  jmp b ptr_ok;
  A.label b bug;
  A.emit b Instr.Ud2;
  A.label b ptr_ok;
  (* validate_guest_context: Xen's exit path audits the frame it is
     about to resume (address-range classification, sanitized flag
     bits).  The audit branches on each value's upper half, so
     corruption there perturbs the dynamic signature; low-half data
     corruption passes silently — exactly the split between
     transition-detectable and silent data errors. *)
  mov b (r Reg.R11) (i 0L);
  List.iteri
    (fun k g ->
      ignore g;
      let next = A.fresh_label b "vgc_next" in
      mov b (r Reg.R9) (m Reg.R15 ~disp:(Int64.of_int (k * 8)));
      shr b (r Reg.R9) 32;
      test b (r Reg.R9) (r Reg.R9);
      jcc b Cond.E next;
      add b (r Reg.R11) (i 1L);
      A.label b next)
    guest_regs;
  let rip_ok = A.fresh_label b "vgc_rip_ok" in
  mov b (r Reg.R9) (m Reg.R15 ~disp:Layout.vcpu_user_rip);
  shr b (r Reg.R9) 32;
  test b (r Reg.R9) (r Reg.R9);
  jcc b Cond.E rip_ok;
  add b (r Reg.R11) (i 1L);
  A.label b rip_ok;
  (* Reload the (possibly updated) guest state from the save area and
     discard the stack frame. *)
  List.iteri
    (fun k g -> mov b (r g) (m Reg.R15 ~disp:(Int64.of_int (k * 8))))
    guest_regs;
  A.emit b
    (Instr.Alu
       (Instr.Add, r Reg.RSP, i (Int64.of_int (8 * List.length guest_regs))));
  (* The stack must be fully unwound (single-CPU host: the per-CPU
     stack top is a constant). *)
  let sp_ok = A.fresh_label b "epi_sp_ok" in
  mov b (r Reg.R10) (i (Layout.stack_top ~cpu:0));
  cmp b (r Reg.R10) (r Reg.RSP);
  jcc b Cond.E sp_ok;
  A.emit b Instr.Ud2;
  A.label b sp_ok;
  (* Final current-pointer re-check at the VM-entry boundary: the
     reload sequence above reads through R15, so a corruption landing
     mid-epilogue must still be caught before the guest resumes. *)
  let final_ok = A.fresh_label b "epi_final_ok" in
  mov b (r Reg.R10) (mabs Layout.global_current_vcpu);
  cmp b (r Reg.R10) (r Reg.R15);
  jcc b Cond.E final_ok;
  A.emit b Instr.Ud2;
  A.label b final_ok;
  A.emit b Instr.Vmentry

let store_guest_rax b src = mov b (m Reg.R15 ~disp:0L) src

let load_arg b n dst = mov b (r dst) (mabs (Layout.request_arg n))

let advance_guest_rip b len =
  mov b (r Reg.R10) (m Reg.R15 ~disp:Layout.vcpu_user_rip);
  add b (r Reg.R10) (ii len);
  mov b (m Reg.R15 ~disp:Layout.vcpu_user_rip) (r Reg.R10)

(* Deliver the port in RDI: the paper's Fig 5b control flow.  Scratch:
   R8–R11. *)
let evtchn_deliver ctx b ~out =
  let masked = A.fresh_label b "evtchn_masked" in
  let already = A.fresh_label b "evtchn_already" in
  cmp b (r Reg.RDI) (ii Layout.evtchn_ports);
  jcc b Cond.AE out;
  (* evtchn_set_pending: set the port's bit in the pending bitmap. *)
  A.emit b
    (Instr.Bts (m Reg.R14 ~disp:Layout.si_evtchn_pending, r Reg.RDI));
  (* Masked ports do not raise an upcall. *)
  A.emit b (Instr.Bt (m Reg.R14 ~disp:Layout.si_evtchn_mask, r Reg.RDI));
  jcc b Cond.B masked;
  (* Find the target VCPU from the channel entry:
     entry = dom_base + 0x2000 + port*16. *)
  mov b (r Reg.R10) (r Reg.RDI);
  shl b (r Reg.R10) 4;
  add b (r Reg.R10) (r Reg.R12);
  mov b (r Reg.R8) (m Reg.R10 ~disp:(Int64.add 0x2000L Layout.evtchn_target));
  emit_assert_range ctx b ~name:"evtchn_target_vcpu" (r Reg.R8) 0L
    (Int64.of_int (Layout.vcpus_per_domain - 1));
  (* vcpu_info = shared_info + 0x100 + vcpu*0x40 *)
  shl b (r Reg.R8) 6;
  add b (r Reg.R8) (r Reg.R14);
  mov b (r Reg.R11)
    (m Reg.R8 ~disp:(Int64.add 0x100L Layout.vi_upcall_pending));
  (* vcpu_mark_events_pending: skip when an upcall is already
     pending — the test/je of Fig 5b. *)
  test b (r Reg.R11) (r Reg.R11);
  jcc b Cond.NE already;
  mov b (m Reg.R8 ~disp:(Int64.add 0x100L Layout.vi_upcall_pending)) (i 1L);
  A.label b already;
  A.label b masked

(* Read TSC, scale, store system time, publish versioned snapshot. *)
let time_update ?(hardened = false) ctx b =
  A.emit b Instr.Rdtsc;
  shl b (r Reg.RDX) 32;
  or_ b (r Reg.RAX) (r Reg.RDX);
  if hardened then begin
    (* The paper's SVI rdtsc-variation check: two adjacent reads must
       be close; a wild delta means the first value was corrupted. *)
    mov b (r Reg.R8) (r Reg.RAX);
    A.emit b Instr.Rdtsc;
    shl b (r Reg.RDX) 32;
    or_ b (r Reg.RAX) (r Reg.RDX);
    mov b (r Reg.R10) (r Reg.RAX);
    sub b (r Reg.R10) (r Reg.R8);
    let delta_ok = A.fresh_label b "tsc_delta_ok" in
    cmp b (r Reg.R10) (i 256L);
    jcc b Cond.BE delta_ok;
    A.emit b Instr.Ud2;
    A.label b delta_ok
  end;
  mov b (mabs Layout.time_last_tsc) (r Reg.RAX);
  mov b (r Reg.R9) (r Reg.RAX) (* keep raw tsc *);
  A.emit b (Instr.Imul (Reg.RAX, mabs Layout.time_tsc_mul));
  shr b (r Reg.RAX) Layout.tsc_shift_value;
  if hardened then begin
    (* Duplicate the scaling computation from the kept raw TSC and
       compare: selective value duplication over the time path. *)
    mov b (r Reg.R10) (r Reg.R9);
    A.emit b (Instr.Imul (Reg.R10, mabs Layout.time_tsc_mul));
    shr b (r Reg.R10) Layout.tsc_shift_value;
    let scale_ok = A.fresh_label b "tsc_scale_ok" in
    cmp b (r Reg.RAX) (r Reg.R10);
    jcc b Cond.E scale_ok;
    A.emit b Instr.Ud2;
    A.label b scale_ok
  end;
  (* Monotonicity guard, as Xen's time code has: system time never
     runs backwards; a regression takes the clamp path (whose extra
     instructions surface in the dynamic signature). *)
  let mono_ok = A.fresh_label b "time_mono_ok" in
  mov b (r Reg.R10) (mabs Layout.time_system_time);
  cmp b (r Reg.RAX) (r Reg.R10);
  jcc b Cond.AE mono_ok;
  mov b (r Reg.RAX) (r Reg.R10);
  add b (r Reg.RAX) (i 1L);
  A.label b mono_ok;
  mov b (mabs Layout.time_system_time) (r Reg.RAX);
  (* Seqlock publish into vcpu0's time fields. *)
  let vi = 0x100L in
  mov b (r Reg.R10) (m Reg.R14 ~disp:(Int64.add vi Layout.vi_time_version));
  inc b (r Reg.R10);
  mov b (m Reg.R14 ~disp:(Int64.add vi Layout.vi_time_version)) (r Reg.R10);
  mov b (m Reg.R14 ~disp:(Int64.add vi Layout.vi_tsc_timestamp)) (r Reg.R9);
  mov b (m Reg.R14 ~disp:(Int64.add vi Layout.vi_system_time)) (r Reg.RAX);
  emit_assert_nonzero ctx b ~name:"time_version_odd" (r Reg.R10);
  inc b (r Reg.R10);
  mov b (m Reg.R14 ~disp:(Int64.add vi Layout.vi_time_version)) (r Reg.R10);
  (* Derive and publish the wall clock (seconds and nanoseconds) from
     the scaled time — a long-lived time value in RAX/RDX, as in Xen's
     update_wallclock path. *)
  mov b (r Reg.R10) (i 1_000_000_000L);
  A.emit b (Instr.Idiv (r Reg.R10));
  mov b (m Reg.R14 ~disp:Layout.si_wc_sec) (r Reg.RAX);
  mov b (m Reg.R14 ~disp:Layout.si_wc_nsec) (r Reg.RDX);
  mov b (mabs Layout.time_wall_sec) (r Reg.RAX);
  mov b (mabs Layout.time_wall_nsec) (r Reg.RDX)

let jiffies_tick b = add b (mabs Layout.global_jiffies) (i 1L)

let copy_from_guest ctx b ~count_words_max =
  ignore count_words_max;
  mov b (r Reg.RCX) (r Reg.RDX);
  (* The debug assertion checks the buffer's hard capacity, not the
     caller's limit: a moderately corrupted count slips through (extra
     dynamic instructions, the paper's Fig 5a) while a wildly corrupted
     one either trips the assertion or walks off the buffer into a
     page fault. *)
  emit_assert_range ctx b ~name:"copy_count" (r Reg.RCX) 0L
    (Int64.of_int Layout.buffer_words);
  mov b (r Reg.RSI) (i Layout.guest_buffer);
  mov b (r Reg.RDI) (i Layout.bounce_buffer);
  A.emit b Instr.Rep_movsq

let checksum_bounce b =
  let loop = A.fresh_label b "cksum_loop" in
  let done_ = A.fresh_label b "cksum_done" in
  mov b (r Reg.RCX) (r Reg.RDX);
  mov b (r Reg.RSI) (i Layout.bounce_buffer);
  xor b (r Reg.RAX) (r Reg.RAX);
  A.label b loop;
  test b (r Reg.RCX) (r Reg.RCX);
  jcc b Cond.E done_;
  xor b (r Reg.RAX) (m Reg.RSI);
  add b (r Reg.RSI) (i 8L);
  dec b (r Reg.RCX);
  jmp b loop;
  A.label b done_

(* Three-level walk of the synthetic page table for the VA in RDI.
   Levels use fixed bases (the synthetic tables are contiguous), with
   index extraction and accessed-bit updates that mirror a real walk's
   memory traffic. *)
let pt_walk ctx b ~not_present =
  ignore ctx;
  let level lvl shift =
    let base = Layout.pt_level_base lvl in
    mov b (r Reg.R10) (r Reg.RDI);
    shr b (r Reg.R10) shift;
    and_ b (r Reg.R10) (i 511L);
    shl b (r Reg.R10) 3;
    add b (r Reg.R10) (i base);
    mov b (r Reg.R9) (m Reg.R10);
    A.emit b (Instr.Bt (r Reg.R9, i 0L)) (* present bit *);
    jcc b Cond.AE not_present;
    or_ b (r Reg.R9) (i Layout.pte_accessed);
    mov b (m Reg.R10) (r Reg.R9)
  in
  (* Non-canonical guest addresses are not a hypervisor bug: they take
     the explicit not-present path (Xen injects the fault back to the
     guest). *)
  mov b (r Reg.R11) (r Reg.RDI);
  shr b (r Reg.R11) 47;
  test b (r Reg.R11) (r Reg.R11);
  jcc b Cond.NE not_present;
  level 3 30;
  level 2 21;
  level 1 12

let deliver_pending_traps ctx b =
  let loop = A.fresh_label b "trap_loop" in
  let next = A.fresh_label b "trap_next" in
  let done_ = A.fresh_label b "trap_done" in
  mov b (r Reg.R10) (i 0L);
  A.label b loop;
  cmp b (r Reg.R10) (ii Layout.vcpu_trap_slots);
  jcc b Cond.GE done_;
  (* slot address = r15 + pending_traps + slot*8 *)
  mov b (r Reg.R9)
    (m Reg.R15 ~index:Reg.R10 ~scale:8 ~disp:Layout.vcpu_pending_traps);
  cmp b (r Reg.R9) (i (-1L));
  jcc b Cond.E next;
  (* Listing 1: the obtained trap number must be within the vector
     range before it is handed to the VCPU. *)
  emit_assert_range ctx b ~name:"trap_number" (r Reg.R9) 0L 31L;
  mov b (m Reg.R14 ~disp:(Int64.add 0x100L Layout.vi_pending_sel)) (r Reg.R9);
  (* consume the slot *)
  mov b (r Reg.R8) (i (-1L));
  mov b (r Reg.R11) (r Reg.R10);
  shl b (r Reg.R11) 3;
  add b (r Reg.R11) (r Reg.R15);
  mov b (m Reg.R11 ~disp:Layout.vcpu_pending_traps) (r Reg.R8);
  A.label b next;
  inc b (r Reg.R10);
  jmp b loop;
  A.label b done_

let queue_guest_trap ctx b =
  let loop = A.fresh_label b "queue_loop" in
  let store = A.fresh_label b "queue_store" in
  let full = A.fresh_label b "queue_full" in
  emit_assert_range ctx b ~name:"queued_trap_number" (r Reg.R9) 0L 31L;
  mov b (r Reg.R10) (i 0L);
  A.label b loop;
  cmp b (r Reg.R10) (ii Layout.vcpu_trap_slots);
  jcc b Cond.GE full;
  mov b (r Reg.R11)
    (m Reg.R15 ~index:Reg.R10 ~scale:8 ~disp:Layout.vcpu_pending_traps);
  cmp b (r Reg.R11) (i (-1L));
  jcc b Cond.E store;
  inc b (r Reg.R10);
  jmp b loop;
  A.label b store;
  shl b (r Reg.R10) 3;
  add b (r Reg.R10) (r Reg.R15);
  mov b (m Reg.R10 ~disp:Layout.vcpu_pending_traps) (r Reg.R9);
  A.label b full

let context_switch ctx b =
  let idle = A.fresh_label b "switch_idle" in
  let done_ = A.fresh_label b "switch_done" in
  mov b (m Reg.R15 ~disp:Layout.vcpu_running) (i 0L);
  mov b (r Reg.R10) (mabs Layout.global_runqueue_head);
  test b (r Reg.R10) (r Reg.R10);
  jcc b Cond.E idle;
  (* Dispatch the next VCPU. *)
  mov b (mabs Layout.global_current_vcpu) (r Reg.R10);
  mov b (r Reg.R15) (r Reg.R10);
  (* Domain base backs out the fixed vcpu-area offset. *)
  mov b (r Reg.R11) (r Reg.R15);
  sub b (r Reg.R11) (i 0x8000L);
  mov b (mabs Layout.global_current_dom) (r Reg.R11);
  mov b (r Reg.R12) (r Reg.R11);
  mov b (r Reg.R14) (r Reg.R11);
  add b (r Reg.R14) (i 0x1000L);
  mov b (m Reg.R15 ~disp:Layout.vcpu_running) (i 1L);
  jmp b done_;
  A.label b idle;
  (* Listing 2: before idling the physical CPU, the VCPU we keep must
     already be the idle VCPU. *)
  emit_assert_equals ctx b ~name:"is_idle_vcpu" (m Reg.R15 ~disp:Layout.vcpu_is_idle)
    1L;
  mov b (m Reg.R15 ~disp:Layout.vcpu_running) (i 1L);
  A.label b done_

let apic_eoi b vector =
  mov b (mabs Layout.apic_eoi) (ii vector)

(* Exit-path bookkeeping run by every handler before VM entry, as
   Xen's exit path does (event-channel work check, stat accounting).
   The block lengthens the handler body with pointer-dependent loads
   (page-fault-prone under pointer corruption) and data-dependent
   branches whose outcomes feed the dynamic signature. *)
let exit_audit ?(hardened = false) ctx b =
  let reason_id = Exit_reason.to_id ctx.reason in
  (* State-sanity assertions on the exit path (Xen asserts the same
     invariants): the current VCPU must be marked running and the
     shared-info pointer must be page-aligned.  These catch pointer
     corruptions that landed on mapped-but-wrong memory, which the
     later BUG_ON integrity checks would otherwise turn into #UD. *)
  emit_assert_equals ctx b ~name:"vcpu_is_running"
    (m Reg.R15 ~disp:Layout.vcpu_running) 1L;
  emit_assert ctx b ~name:"shared_info_aligned" (r Reg.R14)
    (Instr.Assert_aligned 12);
  (* Per-reason activation counter (hv-globals page, above the region
     compared for corruption so accounting differences do not masquerade
     as system corruption). *)
  let stat = Int64.add Layout.hv_global_base (Int64.of_int (0x400 + (reason_id * 8))) in
  mov b (r Reg.R10) (mabs stat);
  add b (r Reg.R10) (i 1L);
  mov b (mabs stat) (r Reg.R10);
  (* Fold the current domain's pending words; any pending-and-unmasked
     work marks the event-check note, a data-dependent branch. *)
  let none = A.fresh_label b "audit_none" in
  let scan_done = A.fresh_label b "audit_done" in
  mov b (r Reg.R8) (i 0L);
  for k = 0 to 7 do
    mov b (r Reg.R9)
      (m Reg.R14 ~disp:(Int64.add Layout.si_evtchn_pending (Int64.of_int (k * 8))));
    or_ b (r Reg.R8) (r Reg.R9)
  done;
  test b (r Reg.R8) (r Reg.R8);
  jcc b Cond.E none;
  mov b (mabs (Int64.add Layout.hv_global_base 0x3F8L)) (i 1L);
  jmp b scan_done;
  A.label b none;
  mov b (mabs (Int64.add Layout.hv_global_base 0x3F8L)) (i 0L);
  A.label b scan_done;
  (* Refresh the guest's time snapshot when it is stale, as Xen's
     update_vcpu_system_time does on the way back to the guest.  The
     refresh transits scratch registers, so a fault here corrupts the
     time values the guest reads — the silent-SDC channel behind the
     paper's Table II. *)
  let fresh = A.fresh_label b "audit_time_fresh" in
  mov b (r Reg.R9) (mabs Layout.time_system_time);
  cmp b (r Reg.R9)
    (m Reg.R14 ~disp:(Int64.add 0x100L Layout.vi_system_time));
  jcc b Cond.E fresh;
  if hardened then begin
    (* Double-read the global time before republishing it. *)
    let reread_ok = A.fresh_label b "audit_reread_ok" in
    cmp b (r Reg.R9) (mabs Layout.time_system_time);
    jcc b Cond.E reread_ok;
    A.emit b Instr.Ud2;
    A.label b reread_ok
  end;
  mov b (m Reg.R14 ~disp:(Int64.add 0x100L Layout.vi_system_time)) (r Reg.R9);
  mov b (r Reg.R10) (mabs Layout.time_last_tsc);
  mov b (m Reg.R14 ~disp:(Int64.add 0x100L Layout.vi_tsc_timestamp))
    (r Reg.R10);
  A.label b fresh;
  (* Walk the pending-trap slots looking for deliverable work — a
     bounded loop whose trip count depends on VCPU state. *)
  let loop = A.fresh_label b "audit_loop" in
  let next = A.fresh_label b "audit_next" in
  let fin = A.fresh_label b "audit_fin" in
  mov b (r Reg.R11) (i 0L);
  A.label b loop;
  cmp b (r Reg.R11) (ii Layout.vcpu_trap_slots);
  jcc b Cond.GE fin;
  mov b (r Reg.R9)
    (m Reg.R15 ~index:Reg.R11 ~scale:8 ~disp:Layout.vcpu_pending_traps);
  cmp b (r Reg.R9) (i (-1L));
  jcc b Cond.E next;
  add b (r Reg.R10) (i 1L);
  A.label b next;
  inc b (r Reg.R11);
  jmp b loop;
  A.label b fin
