(** Physical-memory layout of the simulated virtualized host.

    All hypervisor data structures live in simulated memory at fixed
    addresses so that synthesized handler programs can address them and
    so that a flipped pointer bit lands either in a different (wrong
    but mapped) structure — silent corruption — or in unmapped space —
    a page fault, the dominant detection channel in the paper's Fig 8.

    The map, chosen to keep structures sparse (most single-bit address
    corruptions leave the mapped set):

    {v
    0x0010_0000  handler text (synthetic; instruction-index based)
    0x0020_0000  per-CPU hypervisor stacks (16 KiB each)
    0x0030_0000  hypervisor globals (current vcpu, runqueue, softirq…)
    0x0031_0000  IRQ descriptor table (16 lines x 32 bytes)
    0x0032_0000  time area (tsc scale, system time, deadlines)
    0x0034_0000  per-exit request page (args written at VM exit)
    0x0035_0000  tasklet node pool
    0x0040_0000  scratch buffers (guest buffer, hypervisor bounce)
    0x0050_0000  synthetic 3-level page tables
    0x1000_0000 + d*0x10_0000  per-domain block d
    v} *)

val code_base : int64
val hv_stack_base : int64
val hv_stack_size : int
(* per CPU *)
val hv_global_base : int64
val irq_desc_base : int64
val time_area_base : int64
val request_base : int64
val tasklet_pool_base : int64
val scratch_base : int64
val pt_root_base : int64

val stack_top : cpu:int -> int64
(** Initial RSP for a CPU's hypervisor stack. *)

(** {1 Hypervisor globals} (offsets from [hv_global_base]) *)

val global_current_vcpu : int64
(* pointer to current vcpu area *)
val global_runqueue_head : int64
(* pointer to next vcpu area *)
val global_softirq_pending : int64
(* pending softirq bitmap *)
val global_tasklet_head : int64
(* pointer to first tasklet node *)
val global_jiffies : int64
val global_current_dom : int64
(* pointer to current domain block *)

(** {1 IRQ descriptors} *)

val irq_desc : int -> int64
(** Base of the descriptor for an IRQ line (32 bytes: status,
    action id, count, bound event-channel port). *)

val irq_desc_status : int64
val irq_desc_action : int64
val irq_desc_count : int64
val irq_desc_port : int64
(* {1 Time area} (offsets from [time_area_base]) *)

val time_tsc_mul : int64
val time_tsc_shift : int64
val time_last_tsc : int64
val time_system_time : int64
val time_wall_sec : int64
val time_wall_nsec : int64
val time_deadline : int64

val tsc_mul_value : int64
(* Constant scale factor programmed into the time area. *)

val tsc_shift_value : int
(* Constant shift programmed into the time area. *)

val scale_tsc : int64 -> int64
(** The reference time computation the handlers implement:
    [(tsc * tsc_mul_value) >> tsc_shift_value] (logical shift). *)

(** {1 Request page} *)

val request_arg : int -> int64
(** Address of request argument [i] (0–7). *)

(** {1 Tasklet pool} *)

val tasklet_node : int -> int64
(** 32-byte nodes: function id, data, next pointer, done flag. *)

val tasklet_fn : int64
val tasklet_data : int64
val tasklet_next : int64
val tasklet_done : int64
val tasklet_pool_nodes : int
(* {1 Scratch buffers} *)

val guest_buffer : int64
(* Source buffer for guest-to-hypervisor copies. *)

val bounce_buffer : int64
(* The hypervisor-side bounce buffer. *)

val buffer_words : int
(* Capacity of each buffer in 64-bit words. *)

(** {1 Page tables} *)

val pt_level_base : int -> int64
(** Base of page-table level 3 (root), 2 or 1. *)

val pte_present : int64
(* Present bit in a synthetic PTE. *)

val pte_accessed : int64
(* {1 Per-domain block} *)

val max_domains : int
val vcpus_per_domain : int

val dom_base : int -> int64
val dom_struct : int -> int64
val dom_id_field : int64
val dom_is_control : int64
val dom_state : int64

val shared_info : int -> int64
val si_evtchn_pending : int64
(* 8 words = 512 bits *)
val si_evtchn_mask : int64
val si_wc_sec : int64
val si_wc_nsec : int64

val vcpu_info : dom:int -> vcpu:int -> int64
val vi_upcall_pending : int64
val vi_pending_sel : int64
val vi_time_version : int64
val vi_tsc_timestamp : int64
val vi_system_time : int64

val evtchn_ports : int
val evtchn_entry : dom:int -> port:int -> int64
(** 16 bytes per port: state word, target vcpu. *)

val evtchn_state : int64
val evtchn_target : int64

val grant_entries : int
val grant_entry : dom:int -> int -> int64
(** 16 bytes: flags|domid word, frame address. *)

val grant_flags : int64
val grant_frame : int64

val vcpu_area : dom:int -> vcpu:int -> int64
val vcpu_user_regs : int64
(* 16 GPR slots, then RIP at +0x80, RFLAGS at +0x88. *)

val vcpu_user_rip : int64
val vcpu_user_rflags : int64
val vcpu_is_idle : int64
val vcpu_running : int64
val vcpu_pending_traps : int64
(* Array of 8 trap slots (Listing 1's FIRST..LAST scan). *)

val vcpu_trap_slots : int

val map_host : Xentry_machine.Memory.t -> cpus:int -> domains:int -> unit
(** Map every region above for a host with the given CPU and domain
    counts.  Raises [Invalid_argument] if counts exceed the layout's
    capacity. *)

(** {1 APIC and miscellaneous hypervisor scratch} *)

val apic_eoi : int64
(** End-of-interrupt register of the local APIC page. *)

val apic_log : int64
(** Error/status log word of the local APIC model. *)

val tlb_scratch : int64
(** Per-CPU TLB-shootdown scratch words (4). *)

val crash_record : int64
(** Crash-dump record written by fatal exception handlers (8 words). *)

val rcu_list : int64
(** RCU callback counters processed by the RCU softirq (16 words). *)
