(** A VM-exit request: why the hypervisor is being activated and with
    what context.

    Workload models (lib/workload) produce streams of requests; the
    {!Hypervisor} stages each one (request page, structure
    preconditions, guest register file) and runs the reason's handler.
    Argument conventions per reason are documented in {!Handlers}. *)

type t = {
  reason : Exit_reason.t;
  args : int64 array;  (** request-page arguments (up to 8) *)
  guest : int64 array;
      (** guest register seed: RAX, RBX, RCX, RDX, RSI, RDI *)
}

val guest_reg_count : int
(** 6. *)

val make : reason:Exit_reason.t -> args:int64 list -> guest:int64 list -> t
(** Pads/truncates [args] to 8 and [guest] to 6.  For hypercalls the
    guest RAX is forced to the hypercall number (the PV calling
    convention) and RDI/RSI/RDX default to args 0–2 when the caller
    passes fewer guest values. *)

val pp : Format.formatter -> t -> unit
