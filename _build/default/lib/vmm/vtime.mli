(** Hypervisor timekeeping.

    Xen converts raw TSC readings to nanoseconds with a multiply-shift
    (the per-CPU [tsc_to_system_mul] / [tsc_shift] pair) and exports
    system time to guests through vcpu_info.  Time values are the
    paper's single largest class of undetected faults (Table II: 53%):
    a corrupted time computation alters no control flow and trips no
    assertion, surfacing only as an SDC in the guest.  This module owns
    the reference computation against which handler outputs are
    checked. *)

val init : Xentry_machine.Memory.t -> unit
(** Program the scale constants into the time area and zero the
    dynamic fields. *)

val expected_system_time : tsc:int64 -> int64
(** The value a correct handler must compute for a TSC reading:
    [(tsc * tsc_to_system_mul) >> tsc_shift]. *)

val read_system_time : Xentry_machine.Memory.t -> int64
(** Current [system_time] field in the time area. *)

val read_last_tsc : Xentry_machine.Memory.t -> int64

val read_deadline : Xentry_machine.Memory.t -> int64

val jiffies : Xentry_machine.Memory.t -> int64

val time_regions : unit -> (string * int64 * int) list
(** Regions holding time values, for golden-run comparison and for
    attributing undetected faults to the "time values" class. *)
