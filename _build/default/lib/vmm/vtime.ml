open Xentry_machine

let init mem =
  Memory.store64 mem Layout.time_tsc_mul Layout.tsc_mul_value;
  Memory.store64 mem Layout.time_tsc_shift (Int64.of_int Layout.tsc_shift_value);
  Memory.store64 mem Layout.time_last_tsc 0L;
  Memory.store64 mem Layout.time_system_time 0L;
  Memory.store64 mem Layout.time_wall_sec 1_404_172_800L (* fixed epoch *);
  Memory.store64 mem Layout.time_wall_nsec 0L;
  Memory.store64 mem Layout.time_deadline 0L;
  Memory.store64 mem Layout.global_jiffies 0L

let expected_system_time ~tsc = Layout.scale_tsc tsc

let read_system_time mem = Memory.load64 mem Layout.time_system_time
let read_last_tsc mem = Memory.load64 mem Layout.time_last_tsc
let read_deadline mem = Memory.load64 mem Layout.time_deadline
let jiffies mem = Memory.load64 mem Layout.global_jiffies

let time_regions () =
  [
    ("time/system_time", Layout.time_system_time, 8);
    ("time/last_tsc", Layout.time_last_tsc, 8);
    ("time/deadline", Layout.time_deadline, 8);
    ("time/wallclock", Layout.time_wall_sec, 16);
  ]
