lib/vmm/event_channel.mli: Xentry_machine
