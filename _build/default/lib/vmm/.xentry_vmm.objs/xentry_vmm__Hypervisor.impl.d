lib/vmm/hypervisor.ml: Array Cpu Domain Event_channel Exit_reason Handlers Hw_exception Hypercall Int64 Layout List Memory Request Rng Scheduler Vtime Xentry_isa Xentry_machine Xentry_util
