lib/vmm/domain.mli: Format Xentry_isa Xentry_machine
