lib/vmm/scheduler.mli: Format
