lib/vmm/hypercall.mli: Format
