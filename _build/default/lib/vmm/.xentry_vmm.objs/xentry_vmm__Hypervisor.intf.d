lib/vmm/hypervisor.mli: Domain Request Scheduler Xentry_isa Xentry_machine
