lib/vmm/vtime.mli: Xentry_machine
