lib/vmm/layout.ml: Int64 Memory Xentry_machine
