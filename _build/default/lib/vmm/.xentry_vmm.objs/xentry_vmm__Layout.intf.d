lib/vmm/layout.mli: Xentry_machine
