lib/vmm/event_channel.ml: Int64 Layout Memory Xentry_machine Xentry_util
