lib/vmm/scheduler.ml: Format List
