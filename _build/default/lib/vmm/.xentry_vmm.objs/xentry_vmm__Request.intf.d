lib/vmm/request.mli: Exit_reason Format
