lib/vmm/handler_blocks.ml: Cond Exit_reason Instr Int64 Layout List Operand Printf Program Reg Xentry_isa
