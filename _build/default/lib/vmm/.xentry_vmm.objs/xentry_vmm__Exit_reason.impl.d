lib/vmm/exit_reason.ml: Array Format Hypercall Printf String Xentry_machine
