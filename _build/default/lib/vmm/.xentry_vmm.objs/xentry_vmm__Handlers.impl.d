lib/vmm/handlers.ml: Array Cond Event_channel Exit_reason Handler_blocks Hashtbl Hw_exception Hypercall Instr Int64 Layout Operand Program Reg Xentry_isa Xentry_machine
