lib/vmm/domain.ml: Format Int64 Layout Memory Printf Xentry_isa Xentry_machine
