lib/vmm/exit_reason.mli: Format Hypercall Xentry_machine
