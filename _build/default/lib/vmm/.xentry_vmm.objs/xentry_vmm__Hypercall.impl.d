lib/vmm/hypercall.ml: Array Format
