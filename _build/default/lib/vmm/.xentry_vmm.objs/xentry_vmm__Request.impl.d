lib/vmm/request.ml: Array Exit_reason Format Hypercall Int64 List
