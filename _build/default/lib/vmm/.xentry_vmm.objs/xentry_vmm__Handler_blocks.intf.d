lib/vmm/handler_blocks.mli: Cond Exit_reason Operand Program Reg Xentry_isa
