lib/vmm/vtime.ml: Int64 Layout Memory Xentry_machine
