lib/vmm/handlers.mli: Exit_reason Hypercall Xentry_isa
