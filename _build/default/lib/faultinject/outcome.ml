type short_kind = Hv_crash | Hv_hang

type long_kind = App_sdc | App_crash | One_vm_failure | All_vm_failure

type consequence =
  | Not_activated
  | Masked
  | Short_latency of short_kind
  | Long_latency of long_kind

let manifested = function
  | Not_activated | Masked -> false
  | Short_latency _ | Long_latency _ -> true

type undetected_class = Mis_classify | Stack_values | Time_values | Other_values

type record = {
  fault : Fault.t;
  reason : Xentry_vmm.Exit_reason.t;
  activated : bool;
  consequence : consequence;
  verdict : Xentry_core.Framework.verdict;
  latency : int option;
  undetected : undetected_class option;
  signature : Xentry_machine.Pmu.snapshot option;
  golden_signature : Xentry_machine.Pmu.snapshot;
}

let short_name = function Hv_crash -> "hypervisor crash" | Hv_hang -> "hypervisor hang"

let long_name = function
  | App_sdc -> "APP SDC"
  | App_crash -> "APP Crash"
  | One_vm_failure -> "One VM Failure"
  | All_vm_failure -> "All VM Failure"

let consequence_name = function
  | Not_activated -> "not activated"
  | Masked -> "masked"
  | Short_latency k -> short_name k
  | Long_latency k -> long_name k

let undetected_name = function
  | Mis_classify -> "Mis-Classify"
  | Stack_values -> "Stack Values"
  | Time_values -> "Time Values"
  | Other_values -> "Other Values"

let pp ppf r =
  Format.fprintf ppf "%a in %s: %s, %a" Fault.pp r.fault
    (Xentry_vmm.Exit_reason.name r.reason)
    (consequence_name r.consequence)
    Xentry_core.Framework.pp_verdict r.verdict
