(** Consequence classification by golden-run comparison.

    After a faulted execution (run with detection disabled, so nothing
    interrupts the propagation), the host's architectural outputs are
    compared against a golden execution from the identical starting
    state.  Which structures differ — and whose they are — determines
    the paper's consequence classes: corrupting another domain's
    structures or the control domain's fails that VM or all VMs;
    corrupting the current guest's kernel structures fails that VM;
    corrupting its register file crashes or silently corrupts the
    application; corrupting only time values is a silent data
    corruption (the dominant undetected class, Table II). *)

type region_class =
  | User_gpr of int * int64
      (** a guest GPR save slot: (gpr index, golden value) *)
  | User_ctl  (** saved guest RIP/RFLAGS *)
  | Traps  (** pending trap slots *)
  | Vcpu_time  (** per-VCPU time snapshot in vcpu_info *)
  | Vcpu_event  (** upcall flags in vcpu_info *)
  | Kernel  (** shared info bitmaps, event channels, grant table *)

type diff =
  | Dom_diff of { dom : int; cls : region_class }
  | Global_time_diff
  | Hv_global_diff
  | Stack_diff
  | Guest_reg_diff of Xentry_isa.Reg.gpr * int64
      (** live register difference at VM entry: (register, golden
          value) *)

val diffs :
  golden:Xentry_vmm.Hypervisor.t ->
  faulted:Xentry_vmm.Hypervisor.t ->
  diff list
(** All architectural differences between two hosts after both
    executed the same request (golden vs faulted). *)

val consequence :
  current_dom:int ->
  faulted_stop:Xentry_machine.Cpu.stop ->
  diff list ->
  Outcome.consequence
(** Map the faulted run's stop reason and the observed differences to
    a consequence.  [Masked] when the run reached VM entry with no
    differences. *)

val undetected_class :
  fault:Fault.t ->
  signature_differs:bool ->
  diff list ->
  Outcome.undetected_class
(** Attribute a manifested-but-undetected fault (Table II): a
    distinguishable signature the tree rejected is a
    mis-classification; otherwise pure data corruption is attributed
    to time values, stack values, or other values. *)
