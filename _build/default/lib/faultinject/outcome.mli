(** Fault outcome taxonomy (paper §II-A and §V-E).

    The consequence of an activated fault, observed on an unprotected
    host (detection disabled) by comparing the faulted run against a
    golden run from the identical state:

    - {e short latency} errors stay in host mode: the hypervisor
      crashes or hangs before VM entry (Fig 2's Path 1);
    - {e long latency} errors survive to VM entry with corrupted
      guest-visible or system-critical state (Fig 2's Path 2), with
      the paper's four consequences: application SDC, application
      crash, one-VM failure, all-VM failure. *)

type short_kind =
  | Hv_crash  (** fatal hardware exception in host mode *)
  | Hv_hang  (** watchdog-detected hang (e.g. corrupted loop counter) *)

type long_kind =
  | App_sdc
      (** corrupted data reaches the application, which completes with
          a wrong result — the most dangerous case *)
  | App_crash  (** corrupted state makes the application abort *)
  | One_vm_failure  (** one guest VM crashes or hangs *)
  | All_vm_failure
      (** the control domain or global hypervisor state is corrupted:
          every VM is affected *)

type consequence =
  | Not_activated  (** the flipped register was overwritten before use *)
  | Masked  (** activated, but architectural outputs match the golden run *)
  | Short_latency of short_kind
  | Long_latency of long_kind

val manifested : consequence -> bool
(** Did the fault cause a failure or data corruption?  (The paper's
    "~17,700 of 30,000 injections caused failures or data
    corruptions".) *)

type undetected_class =
  | Mis_classify  (** signature differed but the tree accepted it *)
  | Stack_values  (** corrupted values pushed to / popped from the stack *)
  | Time_values  (** corrupted time computations (Table II's 53%) *)
  | Other_values

type record = {
  fault : Fault.t;
  reason : Xentry_vmm.Exit_reason.t;
  activated : bool;
  consequence : consequence;
  verdict : Xentry_core.Framework.verdict;
  latency : int option;
      (** instructions from activation to detection, for detected
          activated faults *)
  undetected : undetected_class option;
      (** set only for manifested, undetected faults *)
  signature : Xentry_machine.Pmu.snapshot option;
      (** the faulted execution's performance-counter signature, when
          it reached VM entry (the VM-transition detector's input and
          the training pipeline's raw material) *)
  golden_signature : Xentry_machine.Pmu.snapshot;
      (** the fault-free execution's signature from the same state *)
}

val consequence_name : consequence -> string
val short_name : short_kind -> string
val long_name : long_kind -> string
val undetected_name : undetected_class -> string

val pp : Format.formatter -> record -> unit
