type t = { target : Xentry_isa.Reg.arch; bit : int; step : int }

let sample rng ~max_step =
  let open Xentry_util in
  {
    target = Rng.choice rng Xentry_isa.Reg.all_arch;
    bit = Rng.int rng 64;
    step = Rng.int rng (max 1 max_step);
  }

let to_injection t =
  {
    Xentry_machine.Cpu.inj_target = t.target;
    inj_bit = t.bit;
    inj_step = t.step;
  }

let pp ppf t =
  Format.fprintf ppf "%s[bit %d]@step %d"
    (Xentry_isa.Reg.arch_name t.target)
    t.bit t.step
