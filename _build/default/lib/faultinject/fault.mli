(** The fault model (paper §V-B).

    A single bit flip in the architectural register state — the 16
    general-purpose registers, the instruction pointer and the flags —
    injected at a uniformly random dynamic instruction of a hypervisor
    execution.  One fault per run; concurrent double faults are deemed
    too improbable (§V-B). *)

type t = {
  target : Xentry_isa.Reg.arch;
  bit : int;  (** 0–63 *)
  step : int;  (** dynamic instruction index of the flip *)
}

val sample : Xentry_util.Rng.t -> max_step:int -> t
(** Uniform over registers, bits, and \[0, max_step). *)

val to_injection : t -> Xentry_machine.Cpu.injection

val pp : Format.formatter -> t -> unit
