lib/faultinject/classify.ml: Array Cpu Fault Hypervisor Int64 Layout List Memory Outcome Vtime Xentry_isa Xentry_machine Xentry_vmm
