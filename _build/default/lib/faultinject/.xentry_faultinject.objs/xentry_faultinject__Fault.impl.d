lib/faultinject/fault.ml: Format Rng Xentry_isa Xentry_machine Xentry_util
