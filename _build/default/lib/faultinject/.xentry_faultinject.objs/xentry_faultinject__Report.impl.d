lib/faultinject/report.ml: Array Format Framework List Outcome Xentry_core
