lib/faultinject/campaign.mli: Outcome Xentry_core Xentry_machine Xentry_vmm Xentry_workload
