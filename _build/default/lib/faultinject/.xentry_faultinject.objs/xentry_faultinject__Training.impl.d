lib/faultinject/training.ml: Array Campaign Dataset Features Framework List Metrics Outcome Transition_detector Tree Xentry_core Xentry_mlearn Xentry_workload
