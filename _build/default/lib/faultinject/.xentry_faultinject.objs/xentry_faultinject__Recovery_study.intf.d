lib/faultinject/recovery_study.mli: Format Xentry_core Xentry_workload
