lib/faultinject/report.mli: Format Outcome Xentry_core
