lib/faultinject/outcome.ml: Fault Format Xentry_core Xentry_machine Xentry_vmm
