lib/faultinject/training.mli: Xentry_core Xentry_mlearn Xentry_workload
