lib/faultinject/recovery_study.ml: Classify Cpu Fault Format Framework Hypervisor Recovery_engine Request Xentry_core Xentry_machine Xentry_util Xentry_vmm Xentry_workload
