lib/faultinject/classify.mli: Fault Outcome Xentry_isa Xentry_machine Xentry_vmm
