lib/faultinject/campaign.ml: Classify Cpu Domain Fault Framework Hypervisor List Outcome Pmu Request Transition_detector Xentry_core Xentry_machine Xentry_util Xentry_vmm Xentry_workload
