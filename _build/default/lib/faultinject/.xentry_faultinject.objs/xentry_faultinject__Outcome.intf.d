lib/faultinject/outcome.mli: Fault Format Xentry_core Xentry_machine Xentry_vmm
