lib/faultinject/fault.mli: Format Xentry_isa Xentry_machine Xentry_util
