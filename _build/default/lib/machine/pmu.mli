(** Per-core performance monitoring unit.

    Models the four programmable counters Xentry uses (paper Table I):
    [INST_RETIRED], [BR_INST_RETIRED], [MEM_INST_RETIRED.LOADS] and
    [MEM_INST_RETIRED.STORES].  As in the implementation described in
    §IV, counting is armed at VM exit and read+disarmed at VM entry;
    logical cores do not share counters. *)

type event =
  | Inst_retired
  | Br_inst_retired
  | Mem_loads
  | Mem_stores

val all_events : event array
val event_name : event -> string
(** Hardware event mnemonic as in the paper's Table I. *)

type t

val create : unit -> t
(** Counters start disabled and zeroed. *)

val enable : t -> unit
(** Arm and zero all counters (VM-exit hook). *)

val disable : t -> unit
(** Stop counting (VM-entry hook); values remain readable. *)

val is_enabled : t -> bool

val add : t -> event -> int -> unit
(** Account [n] occurrences; ignored while disabled. *)

val read : t -> event -> int

type snapshot = { inst : int; branches : int; loads : int; stores : int }

val snapshot : t -> snapshot

val zero_snapshot : snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
