lib/machine/pmu.ml: Array Format
