lib/machine/pmu.mli: Format
