lib/machine/hw_exception.mli: Format
