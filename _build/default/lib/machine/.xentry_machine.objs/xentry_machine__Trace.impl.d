lib/machine/trace.ml: Array Format Hashtbl List Xentry_isa
