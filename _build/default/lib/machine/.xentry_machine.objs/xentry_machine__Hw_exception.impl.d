lib/machine/hw_exception.ml: Array Format
