lib/machine/cpu.ml: Array Bits Cond Flags Format Hw_exception Instr Int64 List Memory Operand Pmu Program Reg Xentry_isa Xentry_util
