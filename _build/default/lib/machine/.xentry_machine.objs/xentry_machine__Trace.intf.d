lib/machine/trace.mli: Format Xentry_isa
