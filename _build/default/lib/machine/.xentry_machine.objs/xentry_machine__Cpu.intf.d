lib/machine/cpu.mli: Format Hw_exception Memory Pmu Xentry_isa
