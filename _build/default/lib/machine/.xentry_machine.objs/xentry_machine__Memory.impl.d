lib/machine/memory.ml: Bytes Char Hashtbl Int64
