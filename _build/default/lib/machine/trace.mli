(** Execution flight recorder.

    A bounded ring buffer of the most recently executed instructions,
    attached to a CPU run through its [on_step] hook.  Fault-injection
    debugging needs exactly this view: the dynamic instruction window
    around an activation or a detection — the paper's Fig 5 traces are
    renderings of the same information. *)

type entry = {
  step : int;  (** dynamic instruction index *)
  index : int;  (** static instruction index in the program *)
  instr : int Xentry_isa.Instr.t;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of the last [capacity] instructions (default 64). *)

val hook : t -> int -> int Xentry_isa.Instr.t -> unit
(** Pass as [~on_step:(Trace.hook t)] to {!Cpu.run}. *)

val length : t -> int
(** Entries currently held (≤ capacity). *)

val total : t -> int
(** Total instructions observed since the last [clear]. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Disassembled listing of the retained window. *)

val diff_point : t -> t -> int option
(** First dynamic step at which two traces diverge (same-program runs:
    golden vs faulted), when both windows still cover it.  [None] when
    the retained windows agree or no longer overlap the divergence. *)
