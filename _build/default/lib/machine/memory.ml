exception Fault of { addr : int64; write : bool }

let page_size = 4096
let page_bits = 12

type t = { pages : (int64, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page_of addr = Int64.shift_right_logical addr page_bits
let offset_of addr = Int64.to_int (Int64.logand addr 0xFFFL)

let map_region t ~addr ~size =
  if size < 0 then invalid_arg "Memory.map_region: negative size";
  if size = 0 then ()
  else
    let first = page_of addr in
    let last = page_of (Int64.add addr (Int64.of_int (size - 1))) in
    let rec go p =
      if Int64.compare p last <= 0 then begin
        if not (Hashtbl.mem t.pages p) then
          Hashtbl.replace t.pages p (Bytes.make page_size '\000');
        go (Int64.add p 1L)
      end
    in
    go first

let unmap_region t ~addr ~size =
  if size > 0 then begin
    let first = page_of addr in
    let last = page_of (Int64.add addr (Int64.of_int (size - 1))) in
    let rec go p =
      if Int64.compare p last <= 0 then begin
        Hashtbl.remove t.pages p;
        go (Int64.add p 1L)
      end
    in
    go first
  end

let find_page t addr ~write =
  match Hashtbl.find_opt t.pages (page_of addr) with
  | Some page -> page
  | None -> raise (Fault { addr; write })

let is_mapped t addr = Hashtbl.mem t.pages (page_of addr)

let load8 t addr =
  let page = find_page t addr ~write:false in
  Char.code (Bytes.get page (offset_of addr))

let store8 t addr v =
  let page = find_page t addr ~write:true in
  Bytes.set page (offset_of addr) (Char.chr (v land 0xFF))

let same_page a b = Int64.equal (page_of a) (page_of b)

let load64 t addr =
  let last = Int64.add addr 7L in
  if same_page addr last then
    (* Fast path: the whole word lives in one page. *)
    let page = find_page t addr ~write:false in
    Bytes.get_int64_le page (offset_of addr)
  else
    let rec go i acc =
      if i > 7 then acc
      else
        let b = load8 t (Int64.add addr (Int64.of_int i)) in
        go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
    in
    go 0 0L

let store64 t addr v =
  let last = Int64.add addr 7L in
  if same_page addr last then
    let page = find_page t addr ~write:true in
    Bytes.set_int64_le page (offset_of addr) v
  else
    for i = 0 to 7 do
      let b =
        Int64.to_int
          (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)
      in
      store8 t (Int64.add addr (Int64.of_int i)) b
    done

let blit_out t ~addr ~len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (load8 t (Int64.add addr (Int64.of_int i))))
  done;
  out

(* Page-at-a-time comparison: ranges are walked in within-page chunks
   so the hot path is a direct byte loop over two resident pages
   instead of a hashtable probe per byte. *)
let first_difference a b ~addr ~len =
  let rec walk pos =
    if pos >= len then None
    else
      let at = Int64.add addr (Int64.of_int pos) in
      let in_page = page_size - offset_of at in
      let chunk = min in_page (len - pos) in
      let pa = Hashtbl.find_opt a.pages (page_of at) in
      let pb = Hashtbl.find_opt b.pages (page_of at) in
      match (pa, pb) with
      | None, None -> walk (pos + chunk)
      | Some pg_a, Some pg_b ->
          let off = offset_of at in
          let rec scan i =
            if i >= chunk then walk (pos + chunk)
            else if Bytes.get pg_a (off + i) <> Bytes.get pg_b (off + i) then
              Some (Int64.add at (Int64.of_int i))
            else scan (i + 1)
          in
          scan 0
      | Some pg, None | None, Some pg ->
          (* A mapped page only matches an unmapped one when... never:
             mapped-vs-unmapped differs at the first byte of the
             chunk per the documented semantics. *)
          ignore pg;
          Some at
  in
  walk 0

let region_equal a b ~addr ~len = first_difference a b ~addr ~len = None

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) t.pages;
  { pages }

let mapped_bytes t = Hashtbl.length t.pages * page_size
