type t =
  | DE
  | DB
  | NMI
  | BP
  | OF
  | BR
  | UD
  | NM
  | DF
  | CSO
  | TS
  | NP
  | SS
  | GP
  | PF
  | MF
  | AC
  | MC
  | XM

let vector = function
  | DE -> 0
  | DB -> 1
  | NMI -> 2
  | BP -> 3
  | OF -> 4
  | BR -> 5
  | UD -> 6
  | NM -> 7
  | DF -> 8
  | CSO -> 9
  | TS -> 10
  | NP -> 11
  | SS -> 12
  | GP -> 13
  | PF -> 14
  | MF -> 16
  | AC -> 17
  | MC -> 18
  | XM -> 19

let all =
  [| DE; DB; NMI; BP; OF; BR; UD; NM; DF; CSO; TS; NP; SS; GP; PF; MF; AC; MC; XM |]

let count = Array.length all

let of_vector v =
  let rec find i =
    if i >= count then None
    else if vector all.(i) = v then Some all.(i)
    else find (i + 1)
  in
  find 0

let name = function
  | DE -> "#DE"
  | DB -> "#DB"
  | NMI -> "#NMI"
  | BP -> "#BP"
  | OF -> "#OF"
  | BR -> "#BR"
  | UD -> "#UD"
  | NM -> "#NM"
  | DF -> "#DF"
  | CSO -> "#CSO"
  | TS -> "#TS"
  | NP -> "#NP"
  | SS -> "#SS"
  | GP -> "#GP"
  | PF -> "#PF"
  | MF -> "#MF"
  | AC -> "#AC"
  | MC -> "#MC"
  | XM -> "#XM"

let description = function
  | DE -> "divide error"
  | DB -> "debug"
  | NMI -> "non-maskable interrupt"
  | BP -> "breakpoint"
  | OF -> "overflow"
  | BR -> "bound range exceeded"
  | UD -> "invalid opcode"
  | NM -> "device not available"
  | DF -> "double fault"
  | CSO -> "coprocessor segment overrun"
  | TS -> "invalid TSS"
  | NP -> "segment not present"
  | SS -> "stack segment fault"
  | GP -> "general protection"
  | PF -> "page fault"
  | MF -> "x87 floating point"
  | AC -> "alignment check"
  | MC -> "machine check"
  | XM -> "SIMD floating point"

let pp ppf t = Format.pp_print_string ppf (name t)
