type entry = { step : int; index : int; instr : int Xentry_isa.Instr.t }

type t = {
  capacity : int;
  ring : entry option array;
  mutable seen : int;
}

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; seen = 0 }

let hook t index instr =
  let step = t.seen in
  t.ring.(step mod t.capacity) <- Some { step; index; instr };
  t.seen <- t.seen + 1

let length t = min t.seen t.capacity
let total t = t.seen

let entries t =
  let n = length t in
  List.init n (fun i ->
      let step = t.seen - n + i in
      match t.ring.(step mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.seen <- 0

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "%6d  [%4d]  %a@\n" e.step e.index
        (Xentry_isa.Instr.pp Format.pp_print_int)
        e.instr)
    (entries t)

let diff_point a b =
  let ea = entries a and eb = entries b in
  (* Align on dynamic step numbers, then find the first retained step
     where the static instruction indexes disagree. *)
  let tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace tbl e.step e.index) ea;
  List.fold_left
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Hashtbl.find_opt tbl e.step with
          | Some idx when idx <> e.index -> Some e.step
          | _ -> None))
    None eb
