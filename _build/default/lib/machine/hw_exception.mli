(** Hardware exception vectors of the simulated CPU.

    The 19 architectural exceptions handled by Xen 4.1.2's exception
    handlers (paper §IV: "19 exceptions are handled by exception
    handlers").  Runtime detection (paper §III-A) parses these,
    filtering non-fatal ones (ordinary page faults, general protection
    raised on behalf of guests) from fatal corruption symptoms. *)

type t =
  | DE  (** 0 — divide error *)
  | DB  (** 1 — debug *)
  | NMI  (** 2 — non-maskable interrupt *)
  | BP  (** 3 — breakpoint *)
  | OF  (** 4 — overflow *)
  | BR  (** 5 — bound range *)
  | UD  (** 6 — invalid opcode *)
  | NM  (** 7 — device not available *)
  | DF  (** 8 — double fault *)
  | CSO  (** 9 — coprocessor segment overrun (legacy) *)
  | TS  (** 10 — invalid TSS *)
  | NP  (** 11 — segment not present *)
  | SS  (** 12 — stack segment fault *)
  | GP  (** 13 — general protection *)
  | PF  (** 14 — page fault *)
  | MF  (** 16 — x87 floating point *)
  | AC  (** 17 — alignment check *)
  | MC  (** 18 — machine check *)
  | XM  (** 19 — SIMD floating point *)

val vector : t -> int
(** Architectural vector number. *)

val of_vector : int -> t option

val all : t array
(** The 19 exceptions, in vector order (vector 15 is reserved and has
    no handler). *)

val count : int

val name : t -> string
(** Short mnemonic, e.g. ["#PF"]. *)

val description : t -> string

val pp : Format.formatter -> t -> unit
