open Xentry_isa

type stop =
  | Vm_entry
  | Hw_fault of { exn : Hw_exception.t; detail : int64 }
  | Assertion_failure of { assertion : Instr.assertion; observed : int64 }
  | Halted
  | Out_of_fuel

type fault_fate = Never_touched | Overwritten of int | Activated of int

type injection = { inj_target : Reg.arch; inj_bit : int; inj_step : int }

type activation_report = { injection : injection; fate : fault_fate }

type run_result = {
  stop : stop;
  steps : int;
  final_pmu : Pmu.snapshot;
  activation : activation_report option;
}

type watch = { target : Reg.arch; mutable fate : fault_fate }

type t = {
  cpu_id : int;
  regs : int64 array;
  mutable rip : int64;
  mutable rflags : int64;
  mem : Memory.t;
  pmu_unit : Pmu.t;
  mutable tsc : int64;
  tsc_step : int;
  cpuid_fn : int64 -> int64 * int64 * int64 * int64;
  mutable assertions_on : bool;
  mutable watch : watch option;
  mutable steps : int;
}

let default_cpuid leaf =
  (* Deterministic synthetic CPUID: a fixed mixing of the leaf so that
     emulation results are stable across runs and corruptions of the
     leaf register visibly change the outputs. *)
  let mix k =
    let open Int64 in
    let z = mul (add leaf (of_int k)) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    logxor z (shift_right_logical z 27)
  in
  (mix 1, mix 2, mix 3, mix 4)

let create ?(cpu_id = 0) ?(tsc_step = 3) ?(cpuid_fn = default_cpuid) mem =
  {
    cpu_id;
    regs = Array.make Reg.gpr_count 0L;
    rip = 0L;
    rflags = 2L (* x86 bit 1 always set *);
    mem;
    pmu_unit = Pmu.create ();
    tsc = 1_000_000L;
    tsc_step;
    cpuid_fn;
    assertions_on = true;
    watch = None;
    steps = 0;
  }

let memory t = t.mem
let pmu t = t.pmu_unit
let cpu_id t = t.cpu_id
let get_gpr t g = t.regs.(Reg.gpr_index g)
let set_gpr t g v = t.regs.(Reg.gpr_index g) <- v
let get_rflags t = t.rflags
let set_rflags t v = t.rflags <- v
let get_rip t = t.rip
let get_tsc t = t.tsc
let set_tsc t v = t.tsc <- v
let set_assertions_enabled t b = t.assertions_on <- b
let assertions_enabled t = t.assertions_on

exception Stopped of stop

let hw_fault exn detail = raise (Stopped (Hw_fault { exn; detail }))

(* --- operand evaluation ------------------------------------------------ *)

let effective_address t (m : Operand.mem) =
  let base = match m.base with Some g -> get_gpr t g | None -> 0L in
  let index =
    match m.index with
    | Some g -> Int64.mul (get_gpr t g) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) m.disp

let count ev n = fun t -> Pmu.add t.pmu_unit ev n

let load_mem t addr =
  match Memory.load64 t.mem addr with
  | v ->
      count Pmu.Mem_loads 1 t;
      v
  | exception Memory.Fault { addr; _ } -> hw_fault Hw_exception.PF addr

let store_mem t addr v =
  match Memory.store64 t.mem addr v with
  | () -> count Pmu.Mem_stores 1 t
  | exception Memory.Fault { addr; _ } -> hw_fault Hw_exception.PF addr

let eval t = function
  | Operand.Reg g -> get_gpr t g
  | Operand.Imm v -> v
  | Operand.Mem m -> load_mem t (effective_address t m)

let write t op v =
  match op with
  | Operand.Reg g -> set_gpr t g v
  | Operand.Mem m -> store_mem t (effective_address t m) v
  | Operand.Imm _ -> invalid_arg "Cpu: immediate as destination"

(* --- flags -------------------------------------------------------------- *)

let set_result_flags ?(carry = false) ?(overflow = false) t v =
  t.rflags <- Flags.of_result ~carry ~overflow t.rflags v

let add_flags t a b result =
  let carry = Int64.unsigned_compare result a < 0 in
  let overflow =
    (* Signed overflow: operands share a sign that the result lost. *)
    Int64.compare (Int64.logand (Int64.logxor a result) (Int64.logxor b result)) 0L
    < 0
  in
  set_result_flags ~carry ~overflow t result

let sub_flags t a b result =
  let carry = Int64.unsigned_compare a b < 0 in
  let overflow =
    Int64.compare (Int64.logand (Int64.logxor a b) (Int64.logxor a result)) 0L
    < 0
  in
  set_result_flags ~carry ~overflow t result

(* --- assertion evaluation ----------------------------------------------- *)

let assertion_holds (kind : Instr.assert_kind) v =
  match kind with
  | Assert_range (lo, hi) ->
      Int64.compare v lo >= 0 && Int64.compare v hi <= 0
  | Assert_nonzero -> v <> 0L
  | Assert_zero -> v = 0L
  | Assert_equals expected -> Int64.equal v expected
  | Assert_aligned k -> Xentry_util.Bits.low_bits v k = 0L

(* --- instruction execution ---------------------------------------------- *)

let code_index ~code_base ~len rip =
  let off = Int64.sub rip code_base in
  if Int64.compare off 0L < 0 then hw_fault Hw_exception.PF rip
  else
    let bytes = Int64.of_int Program.instruction_bytes in
    if Int64.rem off bytes <> 0L then hw_fault Hw_exception.UD rip
    else
      let idx = Int64.to_int (Int64.div off bytes) in
      if idx >= len then hw_fault Hw_exception.PF rip else idx

let rip_of_index ~code_base idx =
  Int64.add code_base (Int64.of_int (idx * Program.instruction_bytes))

(* Terminal instructions (vmentry, hlt, failing assertions) still
   retire; faulting instructions do not (x86 faults report before
   retirement), so [retire_terminal] skips the fuel check to keep the
   stop reason intact. *)
let retire_terminal t =
  t.steps <- t.steps + 1;
  t.tsc <- Int64.add t.tsc (Int64.of_int t.tsc_step);
  count Pmu.Inst_retired 1 t

let retire ?(n = 1) t fuel =
  t.steps <- t.steps + n;
  t.tsc <- Int64.add t.tsc (Int64.of_int (n * t.tsc_step));
  count Pmu.Inst_retired n t;
  if t.steps > fuel then raise (Stopped Out_of_fuel)

(* Update the def-use watch from the static read/write sets of the
   instruction about to execute.  The instruction pointer is consumed
   by every fetch, so a watched RIP activates immediately. *)
let update_watch t instr =
  match t.watch with
  | None -> ()
  | Some w when w.fate <> Never_touched -> ()
  | Some w -> (
      match w.target with
      | Reg.Rip -> w.fate <- Activated t.steps
      | Reg.Rflags ->
          if Instr.reads_flags instr then w.fate <- Activated t.steps
          else if Instr.writes_flags instr then w.fate <- Overwritten t.steps
      | Reg.Gpr g ->
          let mem reg list = List.mem reg list in
          if mem g (Instr.regs_read instr) then w.fate <- Activated t.steps
          else if mem g (Instr.regs_written instr) then
            w.fate <- Overwritten t.steps)

let exec_alu t op dst src =
  let a = eval t dst and b = eval t src in
  let result =
    match (op : Instr.alu_op) with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
  in
  (match op with
  | Add -> add_flags t a b result
  | Sub -> sub_flags t a b result
  | And | Or | Xor -> set_result_flags t result);
  write t dst result

let exec_shift t op dst n =
  let a = eval t dst in
  let n = n land 63 in
  let result =
    match (op : Instr.shift_op) with
    | Shl -> Int64.shift_left a n
    | Shr -> Int64.shift_right_logical a n
    | Sar -> Int64.shift_right a n
  in
  set_result_flags t result;
  write t dst result

(* x86 bitstring addressing for bt/bts/btr with a memory base: the bit
   index selects a word relative to the base address, so a single
   instruction can address a multi-word bitmap (Xen's event channels
   rely on this). *)
let bit_location t base idx_val =
  match base with
  | Operand.Reg g ->
      let bit = Int64.to_int (Int64.logand idx_val 63L) in
      `Reg (g, bit)
  | Operand.Mem m ->
      let word = Int64.shift_right idx_val 6 in
      let bit = Int64.to_int (Int64.logand idx_val 63L) in
      let addr = Int64.add (effective_address t m) (Int64.mul word 8L) in
      `Mem (addr, bit)
  | Operand.Imm _ -> invalid_arg "Cpu: immediate as bit-test base"

let exec_bit_op t base idx update =
  let idx_val = eval t idx in
  let read_word = function
    | `Reg (g, _) -> get_gpr t g
    | `Mem (addr, _) -> load_mem t addr
  in
  let loc = bit_location t base idx_val in
  let word = read_word loc in
  let bit = match loc with `Reg (_, b) -> b | `Mem (_, b) -> b in
  let old = Xentry_util.Bits.test word bit in
  t.rflags <- Flags.set t.rflags Flags.CF old;
  (match update with
  | `None -> ()
  | `Set | `Reset ->
      let word' =
        match update with
        | `Set -> Xentry_util.Bits.set word bit
        | `Reset -> Xentry_util.Bits.clear word bit
        | `None -> word
      in
      (match loc with
      | `Reg (g, _) -> set_gpr t g word'
      | `Mem (addr, _) -> store_mem t addr word'));
  ()

(* String operations execute one element per dynamic step and leave
   RIP on themselves while RCX is non-zero, as interruptible x86 rep
   prefixes do.  Each iteration retires as one dynamic instruction, so
   corrupted counts show up in INST_RETIRED (paper Fig 5a), huge counts
   hit the watchdog, and fault injections scheduled mid-copy land
   mid-copy.  They return [true] while iterating (RIP must stay). *)
let exec_rep_movsq t =
  let n = get_gpr t Reg.RCX in
  if n = 0L then false
  else begin
    let src = get_gpr t Reg.RSI and dst = get_gpr t Reg.RDI in
    let v = load_mem t src in
    store_mem t dst v;
    set_gpr t Reg.RSI (Int64.add src 8L);
    set_gpr t Reg.RDI (Int64.add dst 8L);
    set_gpr t Reg.RCX (Int64.sub n 1L);
    true
  end

let exec_rep_stosq t =
  let n = get_gpr t Reg.RCX in
  if n = 0L then false
  else begin
    let v = get_gpr t Reg.RAX in
    let dst = get_gpr t Reg.RDI in
    store_mem t dst v;
    set_gpr t Reg.RDI (Int64.add dst 8L);
    set_gpr t Reg.RCX (Int64.sub n 1L);
    true
  end

let exec_push t v =
  let sp = Int64.sub (get_gpr t Reg.RSP) 8L in
  set_gpr t Reg.RSP sp;
  store_mem t sp v

let exec_pop t =
  let sp = get_gpr t Reg.RSP in
  let v = load_mem t sp in
  set_gpr t Reg.RSP (Int64.add sp 8L);
  v

let flip_register_bit t arch bit =
  let open Xentry_util in
  match arch with
  | Reg.Gpr g -> set_gpr t g (Bits.flip (get_gpr t g) bit)
  | Reg.Rip -> t.rip <- Bits.flip t.rip bit
  | Reg.Rflags -> t.rflags <- Bits.flip t.rflags bit

let detection_latency r =
  match r.activation with
  | Some { fate = Activated at; _ } -> (
      match r.stop with
      | Hw_fault _ | Assertion_failure _ | Vm_entry | Out_of_fuel ->
          Some (max 0 (r.steps - at))
      | Halted -> None)
  | Some _ | None -> None

let run t ~program ~code_base ?entry ?(fuel = 100_000) ?inject ?on_step () =
  let len = Program.length program in
  let entry_index =
    match entry with
    | None -> 0
    | Some label -> (
        match Program.label_position program label with
        | Some i -> i
        | None -> raise (Program.Undefined_label label))
  in
  t.rip <- rip_of_index ~code_base entry_index;
  t.steps <- 0;
  t.watch <- None;
  Pmu.enable t.pmu_unit;
  let injected = ref false in
  let maybe_inject () =
    match inject with
    | Some inj when (not !injected) && t.steps >= inj.inj_step ->
        injected := true;
        flip_register_bit t inj.inj_target inj.inj_bit;
        t.watch <- Some { target = inj.inj_target; fate = Never_touched }
    | Some _ | None -> ()
  in
  let stop_reason =
    try
      let rec step () =
        maybe_inject ();
        (* The fetch consumes RIP, so a watched RIP activates here even
           if the fetch itself faults. *)
        (match t.watch with
        | Some ({ target = Reg.Rip; fate = Never_touched } as w) ->
            w.fate <- Activated t.steps
        | Some _ | None -> ());
        let idx = code_index ~code_base ~len t.rip in
        let instr = program.Program.code.(idx) in
        update_watch t instr;
        (match on_step with Some f -> f idx instr | None -> ());
        let next = rip_of_index ~code_base (idx + 1) in
        let goto target_idx = t.rip <- rip_of_index ~code_base target_idx in
        (* Loads and stores are counted at the access sites
           ([load_mem]/[store_mem]); only branch retirement is counted
           from the instruction shape. *)
        if Instr.is_branch instr then count Pmu.Br_inst_retired 1 t;
        t.rip <- next;
        (match instr with
        | Instr.Nop -> ()
        | Instr.Mov (dst, src) -> write t dst (eval t src)
        | Instr.Lea (g, op) -> (
            match op with
            | Operand.Mem m -> set_gpr t g (effective_address t m)
            | Operand.Reg _ | Operand.Imm _ ->
                invalid_arg "Cpu: lea needs a memory operand")
        | Instr.Alu (op, dst, src) -> exec_alu t op dst src
        | Instr.Shift (op, dst, n) -> exec_shift t op dst n
        | Instr.Shift_var (op, dst, cnt) ->
            exec_shift t op dst (Int64.to_int (Int64.logand (get_gpr t cnt) 63L))
        | Instr.Bt (base, idx) -> exec_bit_op t base idx `None
        | Instr.Bts (base, idx) -> exec_bit_op t base idx `Set
        | Instr.Btr (base, idx) -> exec_bit_op t base idx `Reset
        | Instr.Cmp (a, b) ->
            let x = eval t a and y = eval t b in
            sub_flags t x y (Int64.sub x y)
        | Instr.Test (a, b) ->
            let x = eval t a and y = eval t b in
            set_result_flags t (Int64.logand x y)
        | Instr.Inc dst ->
            let v = Int64.add (eval t dst) 1L in
            set_result_flags t v;
            write t dst v
        | Instr.Dec dst ->
            let v = Int64.sub (eval t dst) 1L in
            set_result_flags t v;
            write t dst v
        | Instr.Neg dst ->
            let v = Int64.neg (eval t dst) in
            set_result_flags t v;
            write t dst v
        | Instr.Imul (g, src) ->
            let v = Int64.mul (get_gpr t g) (eval t src) in
            set_result_flags t v;
            set_gpr t g v
        | Instr.Idiv src ->
            let divisor = eval t src in
            let dividend = get_gpr t Reg.RAX in
            if divisor = 0L then hw_fault Hw_exception.DE 0L
            else if dividend = Int64.min_int && divisor = -1L then
              hw_fault Hw_exception.DE 0L
            else begin
              set_gpr t Reg.RAX (Int64.div dividend divisor);
              set_gpr t Reg.RDX (Int64.rem dividend divisor)
            end
        | Instr.Jmp target -> goto target
        | Instr.Jcc (c, target) -> if Cond.eval c t.rflags then goto target
        | Instr.Jmp_table (sel, targets) ->
            let v = eval t sel in
            count Pmu.Mem_loads 1 t (* dispatch-table entry fetch *);
            if Int64.compare v 0L < 0
               || Int64.compare v (Int64.of_int (Array.length targets)) >= 0
            then hw_fault Hw_exception.GP v
            else goto targets.(Int64.to_int v)
        | Instr.Call target ->
            exec_push t next;
            goto target
        | Instr.Ret ->
            let ra = exec_pop t in
            t.rip <- ra
        | Instr.Push src -> exec_push t (eval t src)
        | Instr.Pop dst -> write t dst (exec_pop t)
        | Instr.Rep_movsq ->
            if exec_rep_movsq t then t.rip <- rip_of_index ~code_base idx
        | Instr.Rep_stosq ->
            if exec_rep_stosq t then t.rip <- rip_of_index ~code_base idx
        | Instr.Cpuid ->
            let rax, rbx, rcx, rdx = t.cpuid_fn (get_gpr t Reg.RAX) in
            set_gpr t Reg.RAX rax;
            set_gpr t Reg.RBX rbx;
            set_gpr t Reg.RCX rcx;
            set_gpr t Reg.RDX rdx
        | Instr.Rdtsc ->
            set_gpr t Reg.RAX (Int64.logand t.tsc 0xFFFFFFFFL);
            set_gpr t Reg.RDX (Int64.shift_right_logical t.tsc 32)
        | Instr.Hlt ->
            retire_terminal t;
            raise (Stopped Halted)
        | Instr.Ud2 -> hw_fault Hw_exception.UD t.rip
        | Instr.Assert a ->
            count Pmu.Br_inst_retired 1 t;
            let v = eval t a.assert_src in
            if t.assertions_on && not (assertion_holds a.assert_kind v) then begin
              retire_terminal t;
              raise (Stopped (Assertion_failure { assertion = a; observed = v }))
            end
        | Instr.Vmentry ->
            retire_terminal t;
            raise (Stopped Vm_entry));
        retire t fuel;
        step ()
      in
      step ()
    with Stopped reason -> reason
  in
  Pmu.disable t.pmu_unit;
  let activation =
    match (inject, t.watch) with
    | Some injection, Some w -> Some { injection; fate = w.fate }
    | Some injection, None ->
        (* Run ended before the injection step was reached. *)
        Some { injection; fate = Never_touched }
    | None, _ -> None
  in
  {
    stop = stop_reason;
    steps = t.steps;
    final_pmu = Pmu.snapshot t.pmu_unit;
    activation;
  }

let pp_stop ppf = function
  | Vm_entry -> Format.fprintf ppf "vm-entry"
  | Hw_fault { exn; detail } ->
      Format.fprintf ppf "hw-fault %s @ %Lx" (Hw_exception.name exn) detail
  | Assertion_failure { assertion; observed } ->
      Format.fprintf ppf "assertion %s failed (observed %Ld)"
        assertion.Instr.assert_name observed
  | Halted -> Format.fprintf ppf "halted"
  | Out_of_fuel -> Format.fprintf ppf "out-of-fuel (hang)"
