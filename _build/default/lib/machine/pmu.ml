type event = Inst_retired | Br_inst_retired | Mem_loads | Mem_stores

let all_events = [| Inst_retired; Br_inst_retired; Mem_loads; Mem_stores |]

let event_name = function
  | Inst_retired -> "INST_RETIRED"
  | Br_inst_retired -> "BR_INST_RETIRED"
  | Mem_loads -> "MEM_INST_RETIRED.LOADS"
  | Mem_stores -> "MEM_INST_RETIRED.STORES"

let index = function
  | Inst_retired -> 0
  | Br_inst_retired -> 1
  | Mem_loads -> 2
  | Mem_stores -> 3

type t = { mutable enabled : bool; counters : int array }

let create () = { enabled = false; counters = Array.make 4 0 }

let enable t =
  Array.fill t.counters 0 4 0;
  t.enabled <- true

let disable t = t.enabled <- false
let is_enabled t = t.enabled

let add t ev n = if t.enabled then
    let i = index ev in
    t.counters.(i) <- t.counters.(i) + n

let read t ev = t.counters.(index ev)

type snapshot = { inst : int; branches : int; loads : int; stores : int }

let snapshot t =
  {
    inst = read t Inst_retired;
    branches = read t Br_inst_retired;
    loads = read t Mem_loads;
    stores = read t Mem_stores;
  }

let zero_snapshot = { inst = 0; branches = 0; loads = 0; stores = 0 }

let pp_snapshot ppf s =
  Format.fprintf ppf "inst=%d br=%d ld=%d st=%d" s.inst s.branches s.loads
    s.stores
