examples/train_detector.mli:
