examples/quickstart.mli:
