examples/fault_injection_campaign.ml: Array Campaign Framework List Outcome Printf Report Stats Sys Training Xentry_core Xentry_faultinject Xentry_util Xentry_workload
