examples/sdc_anatomy.mli:
