examples/train_detector.ml: Dataset List Metrics Printf Training Tree Xentry_core Xentry_faultinject Xentry_mlearn Xentry_workload
